"""Cached simulation runner and aggregation helpers.

Every figure shares the same baselines, so results are memoised at two
levels: an in-process dict and the persistent on-disk cache
(:mod:`repro.experiments.cache`).  Both are keyed by the same stable
content hash of ``(workload, SimParams)``, so equal-but-distinct
parameter objects built via ``dataclasses.replace`` always hit.

:func:`run_matrix` fans uncached (workload, configuration) points
across a ``concurrent.futures.ProcessPoolExecutor``; the simulator is
deterministic by seed, so parallel results are bit-identical to serial
ones.  Worker count comes from ``REPRO_JOBS`` (default
``os.cpu_count()``; ``1`` keeps everything in-process).

Aggregation follows the paper's reporting (Section V): geometric mean
for IPC speedups, arithmetic mean for per-kilo-instruction metrics.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Mapping
from concurrent.futures import ProcessPoolExecutor

from repro.common.log import get_logger
from repro.common.params import WARMUP_MODES, SimParams
from repro.common.stats import amean, geomean
from repro.core.batch import batchable, simulate_batch
from repro.core.build import resolve_components
from repro.core.metrics import RunResult
from repro.core.simulator import simulate
from repro.experiments.cache import CACHE_STATS, ResultCache, cache_enabled, run_key
from repro.experiments.configs import repro_jobs
from repro.trace.workloads import make_trace

_CACHE: dict[str, RunResult] = {}
"""In-process memo, keyed by the stable content hash (run_key)."""

DEFAULT_BATCH_WIDTH = 8
"""Upper bound on lockstep batch size formed by the sweep runner; keeps
one pool worker from hoarding a whole workload's points while the rest
idle, and bounds per-worker memory."""

log = get_logger("experiments.runner")


def _disk() -> ResultCache | None:
    return ResultCache() if cache_enabled() else None


def batching_enabled() -> bool:
    """Whether the sweep runner groups cache-miss jobs into batches.

    On by default; ``REPRO_BATCH=0`` forces the scalar path (useful to
    bisect a suspected batching problem, and what the equivalence tests
    toggle).
    """
    raw = os.environ.get("REPRO_BATCH", "1").strip().lower()
    return raw not in ("0", "false", "no")


def batch_width() -> int:
    """Maximum lockstep batch size (``REPRO_BATCH_WIDTH`` overrides)."""
    raw = os.environ.get("REPRO_BATCH_WIDTH", "").strip()
    return max(2, int(raw)) if raw else DEFAULT_BATCH_WIDTH


def _simulate_point(workload: str, params: SimParams) -> RunResult:
    """Worker entry point: one simulation (top-level for pickling)."""
    return simulate(workload, params)


def _simulate_batch_point(workload: str, params_list: list[SimParams]) -> list[RunResult]:
    """Worker entry point: one lockstep batch (top-level for pickling)."""
    return simulate_batch(workload, params_list)


def resolve_warmup_mode(params: SimParams) -> SimParams:
    """Resolve ``warmup_mode="auto"`` for sweep execution.

    The sweep runner defaults to functional fast-forward warmup
    (``REPRO_WARMUP_MODE`` overrides, e.g. ``cycle`` to recover the old
    behaviour).  Resolution happens *before* cache keys are computed,
    so cached results are always tagged with the concrete mode and the
    two modes never share entries.  Explicit modes pass through.
    """
    if params.warmup_mode != "auto":
        return params
    mode = os.environ.get("REPRO_WARMUP_MODE", "functional").strip().lower()
    if mode == "auto" or mode not in WARMUP_MODES:
        raise ValueError(
            f"REPRO_WARMUP_MODE must be 'cycle' or 'functional', got {mode!r}"
        )
    return params.replace(warmup_mode=mode)


def resolve_check_mode(params: SimParams) -> SimParams:
    """Apply the ``REPRO_CHECK`` invariant-checking override.

    ``REPRO_CHECK=1`` forces every sweep simulation to run with the
    runtime invariant layer on (``SimParams.check_invariants``) -- a
    whole-experiment self-check mode.  Like warmup-mode resolution this
    happens *before* cache keys are computed; checked runs are
    bit-identical to unchecked ones but never share cache entries, so a
    checked sweep actually re-executes every point under the checker.
    """
    raw = os.environ.get("REPRO_CHECK", "").strip().lower()
    if raw in ("", "0", "false", "no"):
        return params
    if raw not in ("1", "true", "yes"):
        raise ValueError(f"REPRO_CHECK must be a boolean flag, got {raw!r}")
    if params.check_invariants:
        return params
    return params.replace(check_invariants=True)


def _resolve(params: SimParams) -> SimParams:
    """All environment overrides, in cache-key order.

    Also resolves every registry-named component up front, so an
    unknown prefetcher/predictor/BTB-variant name fails fast in the
    submitting process instead of inside a sweep worker.
    """
    resolve_components(params)
    return resolve_check_mode(resolve_warmup_mode(params))


def run_config(workload: str, params: SimParams) -> RunResult:
    """Simulate (memoised + disk-cached) one workload configuration."""
    params = _resolve(params)
    key = run_key(workload, params)
    result = _CACHE.get(key)
    if result is not None:
        CACHE_STATS.bump("cache_memo_hit")
        return result
    disk = _disk()
    if disk is not None:
        result = disk.get(key)
        if result is not None:
            _CACHE[key] = result
            return result
    CACHE_STATS.bump("sim_runs")
    result = simulate(workload, params)
    _CACHE[key] = result
    if disk is not None:
        disk.put(key, result)
    return result


def clear_cache() -> None:
    """Drop memoised results (tests use this for isolation).

    Only the in-process memo is dropped; the on-disk cache is managed
    separately (``repro cache clear`` / :class:`ResultCache.clear`).
    """
    _CACHE.clear()


def cache_size() -> int:
    """Number of memoised (workload, params) results."""
    return len(_CACHE)


def run_points(
    points: Iterable[tuple[str, SimParams]],
    jobs: int | None = None,
) -> dict[str, RunResult]:
    """Resolve many (workload, params) points, in parallel when allowed.

    Returns ``{run_key: RunResult}`` covering every requested point.
    Cached points (memo or disk) never re-simulate; the remainder fans
    out across a process pool when ``jobs`` (default ``REPRO_JOBS``)
    exceeds 1 and more than one simulation is pending.
    """
    jobs = repro_jobs() if jobs is None else max(1, jobs)
    disk = _disk()

    resolved: dict[str, RunResult] = {}
    pending: dict[str, tuple[str, SimParams]] = {}
    for workload, params in points:
        params = _resolve(params)
        key = run_key(workload, params)
        if key in resolved or key in pending:
            continue
        result = _CACHE.get(key)
        if result is not None:
            CACHE_STATS.bump("cache_memo_hit")
            resolved[key] = result
            continue
        if disk is not None:
            result = disk.get(key)
            if result is not None:
                _CACHE[key] = result
                resolved[key] = result
                continue
        pending[key] = (workload, params)

    log.debug(
        "run_points: %d point(s) resolved from cache, %d pending",
        len(resolved),
        len(pending),
    )
    if not pending:
        return resolved

    CACHE_STATS.bump("sim_runs", len(pending))
    batches, singles = _plan_batches(pending)
    if batches:
        log.debug(
            "grouped %d point(s) into %d lockstep batch(es), %d scalar",
            sum(len(b) for b in batches),
            len(batches),
            len(singles),
        )
    n_units = len(batches) + len(singles)
    if jobs > 1 and n_units > 1:
        log.debug("fanning %d work unit(s) across %d worker(s)", n_units, jobs)
        # Pre-generate the needed traces so forked workers inherit warm
        # lru_caches instead of regenerating per process.
        for workload, params in pending.values():
            make_trace(workload, params.warmup_instructions + params.sim_instructions)
        with ProcessPoolExecutor(max_workers=min(jobs, n_units)) as pool:
            futures = [
                (
                    group,
                    pool.submit(
                        _simulate_batch_point,
                        pending[group[0]][0],
                        [pending[k][1] for k in group],
                    ),
                )
                for group in batches
            ]
            futures += [
                ([key], pool.submit(_simulate_point, *pending[key]))
                for key in singles
            ]
            for group, future in futures:
                out = future.result()
                results = out if isinstance(out, list) else [out]
                for key, result in zip(group, results):
                    resolved[key] = result
    else:
        for group in batches:
            results = _simulate_batch_point(
                pending[group[0]][0], [pending[k][1] for k in group]
            )
            for key, result in zip(group, results):
                resolved[key] = result
        for key in singles:
            resolved[key] = _simulate_point(*pending[key])

    for key in pending:
        result = resolved[key]
        _CACHE[key] = result
        if disk is not None:
            disk.put(key, result)
    return resolved


def _plan_batches(
    pending: Mapping[str, tuple[str, SimParams]],
) -> tuple[list[list[str]], list[str]]:
    """Group pending run keys into lockstep batches plus scalar leftovers.

    Points batch together when they share a workload *and* a trace
    length (members of one batch must predict against the same oracle
    stream; see :func:`repro.core.batch.simulate_batch`) and their
    config is :func:`~repro.core.batch.batchable`.  Groups are chunked
    to :func:`batch_width`; singletons and non-batchable configs run on
    the scalar path unchanged.
    """
    if not batching_enabled():
        return [], list(pending)
    singles: list[str] = []
    groups: dict[tuple[str, int], list[str]] = {}
    for key, (workload, params) in pending.items():
        if not batchable(params)[0]:
            singles.append(key)
            continue
        n = params.warmup_instructions + params.sim_instructions
        groups.setdefault((workload, n), []).append(key)
    width = batch_width()
    batches: list[list[str]] = []
    for keys in groups.values():
        for i in range(0, len(keys), width):
            chunk = keys[i : i + width]
            if len(chunk) == 1:
                singles.append(chunk[0])
            else:
                batches.append(chunk)
    return batches, singles


def run_matrix(
    configs: Mapping[str, SimParams],
    workloads: Iterable[str],
    jobs: int | None = None,
) -> dict[str, dict[str, RunResult]]:
    """Run every (config, workload) pair; returns results[label][workload]."""
    workloads = list(workloads)
    by_key = run_points(
        ((wl, params) for params in configs.values() for wl in workloads),
        jobs=jobs,
    )
    return {
        label: {wl: by_key[run_key(wl, _resolve(params))] for wl in workloads}
        for label, params in configs.items()
    }


def geomean_speedup(
    results: Mapping[str, Mapping[str, RunResult]],
    label: str,
    baseline_label: str,
) -> float:
    """Geometric-mean IPC speedup of ``label`` over ``baseline_label``."""
    rows = results[label]
    base = results[baseline_label]
    return geomean([rows[wl].ipc / base[wl].ipc for wl in rows])


def mean_metric(
    results: Mapping[str, Mapping[str, RunResult]],
    label: str,
    metric: str,
) -> float:
    """Arithmetic mean of a :class:`RunResult` property across workloads."""
    rows = results[label]
    return amean([getattr(r, metric) for r in rows.values()])
