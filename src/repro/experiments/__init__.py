"""Experiment harness: canonical configurations, cached runner, and one
function per table/figure of the paper (see DESIGN.md section 4)."""

from repro.experiments.configs import (
    baseline_params,
    default_params,
    evaluation_workloads,
    no_fdp,
)
from repro.experiments.runner import (
    clear_cache,
    geomean_speedup,
    mean_metric,
    run_config,
    run_matrix,
)

__all__ = [
    "baseline_params",
    "default_params",
    "evaluation_workloads",
    "no_fdp",
    "clear_cache",
    "geomean_speedup",
    "mean_metric",
    "run_config",
    "run_matrix",
]
