"""Experiment harness: canonical configurations, cached/parallel runner,
the persistent result cache, declarative sweep specs with sharded
resumable execution (docs/SWEEPS.md), and one function per table/figure
of the paper (see DESIGN.md section 4 and docs/PERFORMANCE.md)."""

from repro.experiments.cache import (
    ResultCache,
    cache_stats,
    params_fingerprint,
    run_key,
    workload_fingerprint,
)
from repro.experiments.configs import (
    baseline_params,
    default_params,
    evaluation_workloads,
    no_fdp,
    repro_jobs,
)
from repro.experiments.runner import (
    clear_cache,
    geomean_speedup,
    mean_metric,
    run_config,
    run_matrix,
    run_points,
)
from repro.experiments.spec import (
    SweepPoint,
    SweepSpec,
    SweepSpecError,
    expand,
    load_spec,
    parse_shard,
    parse_spec,
    shard_points,
)
from repro.experiments.sweep import SweepOutcome, merge_sweep, run_sweep

__all__ = [
    "ResultCache",
    "SweepOutcome",
    "SweepPoint",
    "SweepSpec",
    "SweepSpecError",
    "baseline_params",
    "cache_stats",
    "clear_cache",
    "default_params",
    "evaluation_workloads",
    "expand",
    "geomean_speedup",
    "load_spec",
    "mean_metric",
    "merge_sweep",
    "no_fdp",
    "params_fingerprint",
    "parse_shard",
    "parse_spec",
    "repro_jobs",
    "run_config",
    "run_key",
    "run_matrix",
    "run_points",
    "run_sweep",
    "shard_points",
    "workload_fingerprint",
]
