"""Experiment harness: canonical configurations, cached/parallel runner,
the persistent result cache, and one function per table/figure of the
paper (see DESIGN.md section 4 and docs/PERFORMANCE.md)."""

from repro.experiments.cache import (
    ResultCache,
    cache_stats,
    params_fingerprint,
    run_key,
    workload_fingerprint,
)
from repro.experiments.configs import (
    baseline_params,
    default_params,
    evaluation_workloads,
    no_fdp,
    repro_jobs,
)
from repro.experiments.runner import (
    clear_cache,
    geomean_speedup,
    mean_metric,
    run_config,
    run_matrix,
    run_points,
)

__all__ = [
    "ResultCache",
    "baseline_params",
    "cache_stats",
    "clear_cache",
    "default_params",
    "evaluation_workloads",
    "geomean_speedup",
    "mean_metric",
    "no_fdp",
    "params_fingerprint",
    "repro_jobs",
    "run_config",
    "run_key",
    "run_matrix",
    "run_points",
    "workload_fingerprint",
]
