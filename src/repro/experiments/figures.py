"""One function per table and figure of the paper.

Each ``figN`` / ``tableN`` function runs the relevant configuration
matrix over the selected workloads and returns a structured dict:
``{"title": ..., "headers": [...], "rows": [...], ...}`` ready for
:func:`repro.experiments.report.render_table`.  Paper reference values
are included where the paper states them, so EXPERIMENTS.md can record
paper-vs-measured side by side.

See DESIGN.md section 4 for the experiment index.
"""

from __future__ import annotations


from repro.common.params import DirectionPredictorKind, HistoryPolicy, SimParams
from repro.core.metrics import FTQ_FIELD_BITS, ftq_storage_bytes
from repro.experiments.configs import default_params, evaluation_workloads, no_fdp
from repro.experiments.runner import geomean_speedup, mean_metric, run_matrix

TOP3_PREFETCHERS = ["fnl_mma", "djolt", "eip128"]


def _pct(ratio: float) -> float:
    return 100.0 * (ratio - 1.0)


# ----------------------------------------------------------------------
# Fig 1: prefetching limit study on an IPC-1-style framework
# ----------------------------------------------------------------------
def fig1(workloads: list[str] | None = None) -> dict:
    """Limit study with perfect branch prediction: prefetchers vs FDP.

    The IPC-1 framework used perfect target prediction; the FTQ is
    either shallow (12-instruction-class, FDP off) or deep (192
    instructions, FDP on).  Paper: top-3 ~28%+, perfect 30.6%, FDP
    alone 30.2%, top-3 on top of FDP marginal.
    """
    workloads = workloads or evaluation_workloads()
    perfect_bp = default_params().with_branch(
        perfect_btb=True, perfect_direction=True, perfect_indirect=True
    )
    shallow = no_fdp(perfect_bp)
    configs: dict[str, SimParams] = {"base": shallow}
    for name in ["nl1"] + TOP3_PREFETCHERS + ["perfect"]:
        configs[name] = shallow.replace(prefetcher=name)
    configs["fdp"] = perfect_bp.with_frontend(pfc_enabled=False)
    for name in TOP3_PREFETCHERS + ["perfect"]:
        configs[f"fdp+{name}"] = configs["fdp"].replace(prefetcher=name)
    results = run_matrix(configs, workloads)
    rows = [
        [label, _pct(geomean_speedup(results, label, "base"))]
        for label in configs
        if label != "base"
    ]
    return {
        "title": "Fig 1: prefetching limit study (perfect branch prediction)",
        "headers": ["mechanism", "speedup_%"],
        "rows": rows,
        "paper": {"top3": ">28%", "perfect": "30.6%", "fdp": "30.2%"},
    }


# ----------------------------------------------------------------------
# Table I: BTB capacity gap (static data from the paper)
# ----------------------------------------------------------------------
def table1() -> dict:
    """The academia-vs-industry BTB capacity table, plus our default."""
    rows = [
        ["Shotgun [12]", "2.1K", "AMD Zen2 [29]", "7K"],
        ["Confluence [10]", "1.5K", "Samsung Exynos M3 [27]", "16K"],
        ["Divide&Conquer [13]", "2K", "Arm Neoverse N1 [26]", "6K"],
        ["(this repro default)", f"{default_params().branch.btb_entries // 1024}K", "", ""],
    ]
    return {
        "title": "Table I: BTB capacity gap between academia and industry",
        "headers": ["academia", "BTB", "industry", "BTB"],
        "rows": rows,
    }


# ----------------------------------------------------------------------
# Table II: handling BTB-miss not-taken branches (measured)
# ----------------------------------------------------------------------
def table2(workloads: list[str] | None = None) -> dict:
    """Measured counterpart of the paper's qualitative Table II.

    Compares target history (no fixup needed) against direction history
    without fixup (GHR0: most mispredictions) and with fixup (GHR2:
    fewer mispredictions than GHR0 but frontend stalls).
    """
    workloads = workloads or evaluation_workloads()
    base = default_params()
    configs = {
        "Target (THR)": base,
        "Direction no-fix (GHR0)": base.with_frontend(history_policy=HistoryPolicy.GHR0),
        "Direction fix (GHR2)": base.with_frontend(history_policy=HistoryPolicy.GHR2),
    }
    results = run_matrix(configs, workloads)
    rows = []
    for label in configs:
        mpki = mean_metric(results, label, "branch_mpki")
        fixups = mean_metric(results, label, "starvation_per_kilo")
        flushes = sum(
            r.stats.get("ghr_fixup_flush") for r in results[label].values()
        )
        rows.append([label, mpki, flushes, fixups])
    return {
        "title": "Table II: handling BTB-miss not-taken branches (measured)",
        "headers": ["history type", "branch MPKI", "fixup flushes", "starv/KI"],
        "rows": rows,
    }


# ----------------------------------------------------------------------
# Table III: FTQ hardware overhead
# ----------------------------------------------------------------------
def table3() -> dict:
    """FTQ field widths and the 195-byte total (paper Table III)."""
    rows = [[field, f"{bits}-bit"] for field, bits in FTQ_FIELD_BITS.items()]
    rows.append(["Total (24-entry)", f"{ftq_storage_bytes(24)} bytes"])
    rows.append(
        ["PFC-hint increment", f"{ftq_storage_bytes(24) - ftq_storage_bytes(24, with_pfc_hints=False)} bytes"]
    )
    return {
        "title": "Table III: FTQ hardware overhead",
        "headers": ["field", "size"],
        "rows": rows,
        "paper": {"total": "195 bytes", "pfc_hints": "24 bytes"},
    }


# ----------------------------------------------------------------------
# Table IV: common simulation parameters
# ----------------------------------------------------------------------
def table4() -> dict:
    """Dump of the Table IV-equivalent configuration surface."""
    p = default_params()
    rows = [
        ["fetch width", f"{p.frontend.fetch_width} instructions/cycle"],
        ["prediction bandwidth", f"{p.frontend.predict_width} instructions/cycle"],
        ["FTQ", f"{p.frontend.ftq_entries} entries x {p.frontend.instrs_per_block} instructions"],
        ["decode queue", f"{p.frontend.decode_queue_size} instructions"],
        ["L1I", f"{p.memory.l1i_kib}KB {p.memory.l1i_assoc}-way, {p.memory.line_bytes}B lines"],
        ["L2", f"{p.memory.l2_kib}KB, {p.memory.l2_latency}-cycle"],
        ["DRAM", f"{p.memory.dram_latency}-cycle"],
        ["BTB", f"{p.branch.btb_entries} entries, {p.branch.btb_assoc}-way, {p.branch.btb_latency}-cycle"],
        ["direction predictor", f"TAGE {p.branch.tage_storage_kib}KB, {p.branch.history_bits}-bit target history"],
        ["indirect predictor", f"ITTAGE {p.branch.ittage_entries} entries"],
        ["RAS", f"{p.branch.ras_entries} entries"],
        ["mispredict penalty", f"{p.core.mispredict_penalty} cycles"],
        ["windows", f"{p.warmup_instructions} warmup + {p.sim_instructions} measured"],
    ]
    return {
        "title": "Table IV: common simulation parameters",
        "headers": ["parameter", "value"],
        "rows": rows,
    }


# ----------------------------------------------------------------------
# Table V: history management policies
# ----------------------------------------------------------------------
def table5() -> dict:
    """Enumerates the Table V policy definitions as implemented."""
    rows = []
    for policy in HistoryPolicy:
        rows.append(
            [
                policy.value,
                "target" if policy.uses_target_history else "direction",
                "yes" if policy.fixes_not_taken_history else "no",
                "all" if policy.allocates_all_branches else "taken-only",
            ]
        )
    return {
        "title": "Table V: branch history management policies",
        "headers": ["policy", "history", "fixup", "BTB allocation"],
        "rows": rows,
    }


# ----------------------------------------------------------------------
# Fig 6a: instruction prefetching with and without FDP
# ----------------------------------------------------------------------
def fig6a(workloads: list[str] | None = None) -> dict:
    """Speedups of prefetchers and FDP over the no-FDP/no-prefetch
    baseline.  Paper: NL1 10.6%, EIP-27KB 32.4%, FDP 41.0%, FDP+perfect
    BTB +3.4%, FDP+EIP-128KB +4.3%, FDP+perfect +5.4%."""
    workloads = workloads or evaluation_workloads()
    fdp = default_params()
    base = no_fdp(fdp)
    configs: dict[str, SimParams] = {"base": base}
    for name in ["nl1", "eip27", "eip128", "fnl_mma", "djolt", "perfect"]:
        configs[name] = base.replace(prefetcher=name)
    configs["fdp"] = fdp
    configs["fdp+perfbtb"] = fdp.with_branch(perfect_btb=True)
    for name in ["eip128", "perfect"]:
        configs[f"fdp+{name}"] = fdp.replace(prefetcher=name)
    configs["fdp+perfbtb+perfect"] = configs["fdp+perfbtb"].replace(prefetcher="perfect")
    results = run_matrix(configs, workloads)
    rows = [
        [label, _pct(geomean_speedup(results, label, "base"))]
        for label in configs
        if label != "base"
    ]
    return {
        "title": "Fig 6a: IPC improvement by instruction prefetching",
        "headers": ["mechanism", "speedup_%"],
        "rows": rows,
        "paper": {
            "nl1": "10.6%",
            "eip27": "32.4%",
            "fdp": "41.0%",
            "fdp+perfbtb": "FDP+3.4%",
            "fdp+eip128": "FDP+4.3%",
            "fdp+perfect": "FDP+5.4%",
            "fdp+perfbtb+perfect": "46.9%",
        },
    }


# ----------------------------------------------------------------------
# Fig 6b: per-trace EIP-128KB improvement vs branch MPKI
# ----------------------------------------------------------------------
def fig6b(workloads: list[str] | None = None) -> dict:
    """Per-workload EIP-128KB speedup with FDP on and off, against the
    workload's branch MPKI (which FDP leaves unchanged).  Paper: up to
    2.01x without FDP; max 14.8% with FDP, some slightly negative."""
    workloads = workloads or evaluation_workloads()
    fdp = default_params()
    base = no_fdp(fdp)
    configs = {
        "base": base,
        "eip": base.replace(prefetcher="eip128"),
        "fdp": fdp,
        "fdp+eip": fdp.replace(prefetcher="eip128"),
    }
    results = run_matrix(configs, workloads)
    rows = []
    for wl in workloads:
        mpki = results["fdp"][wl].branch_mpki
        no_fdp_gain = _pct(results["eip"][wl].ipc / results["base"][wl].ipc)
        with_fdp_gain = _pct(results["fdp+eip"][wl].ipc / results["fdp"][wl].ipc)
        rows.append([wl, mpki, no_fdp_gain, with_fdp_gain])
    return {
        "title": "Fig 6b: per-trace EIP-128KB improvement vs branch MPKI",
        "headers": ["workload", "branch MPKI", "gain_noFDP_%", "gain_withFDP_%"],
        "rows": rows,
        "paper": {"noFDP max": "101%", "withFDP max": "14.8%"},
    }


# ----------------------------------------------------------------------
# Fig 7: PFC benefit across BTB sizes
# ----------------------------------------------------------------------
BTB_SWEEP = [256, 512, 1024, 2048, 8192, 32768]
"""BTB capacities swept.  The paper sweeps 1K-32K against trace branch
footprints of ~10K; our scaled traces have taken-branch footprints of
~0.8-1.7K, so the sweep is extended down to 256 entries to exercise the
same capacity ratios (DESIGN.md section 6)."""


def fig7(workloads: list[str] | None = None) -> dict:
    """PFC on/off across BTB sizes.  Paper: +9.3% at 1K, +2.4% at 8K,
    ~+0.1% (with more mispredictions) at 32K."""
    workloads = workloads or evaluation_workloads()
    fdp = default_params()
    configs: dict[str, SimParams] = {}
    for entries in BTB_SWEEP:
        for pfc in (False, True):
            label = f"btb{entries}/{'pfc' if pfc else 'nopfc'}"
            configs[label] = fdp.with_branch(btb_entries=entries).with_frontend(
                pfc_enabled=pfc
            )
    results = run_matrix(configs, workloads)
    rows = []
    for entries in BTB_SWEEP:
        on = f"btb{entries}/pfc"
        off = f"btb{entries}/nopfc"
        gain = _pct(geomean_speedup(results, on, off))
        mpki_on = mean_metric(results, on, "branch_mpki")
        mpki_off = mean_metric(results, off, "branch_mpki")
        rows.append([entries, gain, mpki_off, mpki_on])
    return {
        "title": "Fig 7: PFC benefit vs BTB size",
        "headers": ["BTB entries", "PFC gain_%", "MPKI off", "MPKI on"],
        "rows": rows,
        "paper": {"1K": "+9.3%", "8K": "+2.4%", "32K": "+0.1%, MPKI +1.5%"},
    }


# ----------------------------------------------------------------------
# Fig 8: branch history management
# ----------------------------------------------------------------------
def fig8(workloads: list[str] | None = None) -> dict:
    """History policies x PFC.  Paper: THR ~= Ideal; GHR2 loses 23.7%
    to fixup flushes; GHR0 +19.5% mispredictions, -1.5% performance."""
    workloads = workloads or evaluation_workloads()
    fdp = default_params()
    configs: dict[str, SimParams] = {}
    for policy in HistoryPolicy:
        for pfc in (False, True):
            label = f"{policy.value}/{'pfc' if pfc else 'nopfc'}"
            configs[label] = fdp.with_frontend(history_policy=policy, pfc_enabled=pfc)
    results = run_matrix(configs, workloads)
    base_label = f"{HistoryPolicy.THR.value}/pfc"
    rows = []
    for policy in HistoryPolicy:
        for pfc in (False, True):
            label = f"{policy.value}/{'pfc' if pfc else 'nopfc'}"
            rel = _pct(geomean_speedup(results, label, base_label))
            mpki = mean_metric(results, label, "branch_mpki")
            rows.append([policy.value, "on" if pfc else "off", rel, mpki])
    return {
        "title": "Fig 8: branch history management (relative to THR+PFC)",
        "headers": ["policy", "PFC", "rel_perf_%", "branch MPKI"],
        "rows": rows,
        "paper": {
            "THR": "~Ideal",
            "GHR2": "-23.7% vs Ideal",
            "GHR0": "+19.5% mispred, -1.5% perf",
        },
    }


# ----------------------------------------------------------------------
# Fig 9: ISO-budget comparison
# ----------------------------------------------------------------------
def fig9(workloads: list[str] | None = None) -> dict:
    """8K BTB vs 4K BTB + EIP-27KB vs 4K BTB, all with FDP.

    Paper: 41.0% vs 40.6% speedup; the 8K BTB has 12% fewer
    mispredictions, EIP has 13.5% lower starvation but 3.5x more
    I-cache tag accesses."""
    workloads = workloads or evaluation_workloads()
    fdp = default_params()
    base = no_fdp(fdp)
    configs = {
        "base": base,
        "fdp/btb8k": fdp.with_branch(btb_entries=8192),
        "fdp/btb4k+eip27": fdp.with_branch(btb_entries=4096).replace(prefetcher="eip27"),
        "fdp/btb4k": fdp.with_branch(btb_entries=4096),
    }
    results = run_matrix(configs, workloads)
    rows = []
    for label in configs:
        if label == "base":
            continue
        rows.append(
            [
                label,
                _pct(geomean_speedup(results, label, "base")),
                mean_metric(results, label, "branch_mpki"),
                mean_metric(results, label, "starvation_per_kilo"),
                mean_metric(results, label, "tag_accesses_per_kilo"),
            ]
        )
    return {
        "title": "Fig 9: ISO-budget analysis (FDP + BTB vs FDP + smaller BTB + EIP)",
        "headers": ["config", "speedup_%", "branch MPKI", "starv/KI", "tag/KI"],
        "rows": rows,
        "paper": {"speedups": "41.0% vs 40.6%", "tag accesses": "EIP 3.5x more"},
    }


# ----------------------------------------------------------------------
# Fig 10: BTB prefetching with PFC
# ----------------------------------------------------------------------
def fig10(workloads: list[str] | None = None) -> dict:
    """Divide-and-Conquer (SN4L+Dis with/without BTB prefetching) across
    BTB sizes, history policies and PFC.  Paper: BTB prefetching helps
    small BTBs with GHR (+8.8% at 2K) and hurts an 8K BTB with THR."""
    workloads = workloads or evaluation_workloads()
    fdp = default_params()
    configs: dict[str, SimParams] = {}
    btb_points: list[tuple[str, SimParams]] = [
        ("btb512", fdp.with_branch(btb_entries=512)),
        ("btb8k", fdp.with_branch(btb_entries=8192)),
        ("btbPerf", fdp.with_branch(perfect_btb=True)),
    ]
    for btb_label, btb_params in btb_points:
        for hist_label, policy in (("THR", HistoryPolicy.THR), ("GHR", HistoryPolicy.GHR3)):
            for pfc in (False, True):
                for pf_label, pf in (("sn4l_dis", "sn4l_dis"), ("+btbpf", "sn4l_dis_btb")):
                    label = f"{btb_label}/{hist_label}/{'pfc' if pfc else 'nopfc'}/{pf_label}"
                    configs[label] = btb_params.with_frontend(
                        history_policy=policy, pfc_enabled=pfc
                    ).replace(prefetcher=pf)
    results = run_matrix(configs, workloads)
    anchor = "btb8k/THR/pfc/sn4l_dis"
    rows = []
    for label in configs:
        rows.append(
            [
                label,
                _pct(geomean_speedup(results, label, anchor)),
                mean_metric(results, label, "branch_mpki"),
            ]
        )
    return {
        "title": "Fig 10: BTB prefetching with PFC (relative to 8K/THR/PFC/SN4L+Dis)",
        "headers": ["config", "rel_perf_%", "branch MPKI"],
        "rows": rows,
        "paper": {"GHR 2K": "+8.8% from BTB prefetching", "THR 8K": "BTB prefetching hurts"},
    }


# ----------------------------------------------------------------------
# Fig 11: BTB capacity sensitivity
# ----------------------------------------------------------------------
def fig11(workloads: list[str] | None = None) -> dict:
    """BTB size sweep with FDP on and off.  Paper: FDP widens small-BTB
    gains (PFC compensates misses); both saturate once the branch
    footprint fits; FDP better at every capacity."""
    workloads = workloads or evaluation_workloads()
    fdp = default_params()
    configs: dict[str, SimParams] = {}
    for entries in BTB_SWEEP:
        configs[f"fdp/btb{entries}"] = fdp.with_branch(btb_entries=entries)
        configs[f"nofdp/btb{entries}"] = no_fdp(fdp).with_branch(btb_entries=entries)
    results = run_matrix(configs, workloads)
    anchor = f"nofdp/btb{BTB_SWEEP[0]}"
    rows = []
    for entries in BTB_SWEEP:
        rows.append(
            [
                entries,
                _pct(geomean_speedup(results, f"nofdp/btb{entries}", anchor)),
                _pct(geomean_speedup(results, f"fdp/btb{entries}", anchor)),
                mean_metric(results, f"fdp/btb{entries}", "branch_mpki"),
            ]
        )
    return {
        "title": "Fig 11: BTB capacity sensitivity (speedup over smallest no-FDP)",
        "headers": ["BTB entries", "noFDP_%", "FDP_%", "FDP branch MPKI"],
        "rows": rows,
        "paper": {"shape": "FDP better everywhere; saturation once footprint fits"},
    }


# ----------------------------------------------------------------------
# Fig 12: direction predictor sensitivity
# ----------------------------------------------------------------------
def fig12(workloads: list[str] | None = None) -> dict:
    """Gshare vs TAGE sizes vs perfect prediction, with PFC on/off.

    Paper: Gshare 31.4% vs TAGE 37.1%; PFC *hurts* Gshare by 6.0%;
    perfect direction makes PFC worth +4.6%; Perfect All 49.4%."""
    workloads = workloads or evaluation_workloads()
    fdp = default_params()
    base = no_fdp(fdp)
    variants: dict[str, SimParams] = {
        "gshare8k": fdp.with_branch(direction_kind=DirectionPredictorKind.GSHARE),
        "tage9k": fdp.with_branch(tage_storage_kib=9),
        "tage18k": fdp,
        "tage36k": fdp.with_branch(tage_storage_kib=36),
        "perfdir": fdp.with_branch(perfect_direction=True),
        "perfall": fdp.with_branch(
            perfect_direction=True, perfect_btb=True, perfect_indirect=True
        ),
    }
    configs: dict[str, SimParams] = {"base": base}
    for label, params in variants.items():
        configs[f"{label}/pfc"] = params
        configs[f"{label}/nopfc"] = params.with_frontend(pfc_enabled=False)
    results = run_matrix(configs, workloads)
    rows = []
    for label in variants:
        on = _pct(geomean_speedup(results, f"{label}/pfc", "base"))
        off = _pct(geomean_speedup(results, f"{label}/nopfc", "base"))
        mpki = mean_metric(results, f"{label}/pfc", "branch_mpki")
        rows.append([label, off, on, mpki])
    return {
        "title": "Fig 12: direction predictor sensitivity (speedup over baseline)",
        "headers": ["predictor", "noPFC_%", "PFC_%", "MPKI (PFC)"],
        "rows": rows,
        "paper": {
            "gshare": "31.4% (PFC -6.0%)",
            "tage18k": "37.1%",
            "perfdir+PFC": "+4.6%",
            "perfall": "49.4%",
        },
    }


# ----------------------------------------------------------------------
# Fig 13: prediction bandwidth / BTB latency sensitivity
# ----------------------------------------------------------------------
def fig13(workloads: list[str] | None = None) -> dict:
    """Bandwidth B6/B12/B18/B18m and BTB latency 1-4.  Paper: B18 ~= B12,
    B6 -0.6%, B18m +0.2%; 4-cycle BTB latency -1.8%."""
    workloads = workloads or evaluation_workloads()
    fdp = default_params()
    configs = {
        "B6": fdp.with_frontend(predict_width=6),
        "B12": fdp,
        "B18": fdp.with_frontend(predict_width=18),
        "B18m": fdp.with_frontend(predict_width=18, max_taken_per_cycle=2),
        "lat1": fdp.with_branch(btb_latency=1),
        "lat2": fdp,
        "lat3": fdp.with_branch(btb_latency=3),
        "lat4": fdp.with_branch(btb_latency=4),
    }
    results = run_matrix(configs, workloads)
    rows = [
        [label, _pct(geomean_speedup(results, label, "B12"))]
        for label in configs
    ]
    return {
        "title": "Fig 13: prediction bandwidth and BTB latency (relative to B12/lat2)",
        "headers": ["config", "rel_perf_%"],
        "rows": rows,
        "paper": {"B6": "-0.6%", "B18": "~0%", "B18m": "+0.2%", "lat4": "-1.8%"},
    }


# ----------------------------------------------------------------------
# Fig 14: FTQ size sensitivity + miss exposure
# ----------------------------------------------------------------------
FTQ_SWEEP = [2, 4, 8, 12, 16, 24, 32]


def fig14(workloads: list[str] | None = None) -> dict:
    """FTQ depth sweep with exposed/covered miss classification.

    Paper: +23.7% at 4 entries, +39.5% at 12, marginal beyond; 76% of
    misses exposed at 2 entries, 90.6% of those removed at 24."""
    workloads = workloads or evaluation_workloads()
    fdp = default_params()
    configs = {
        f"ftq{n}": fdp.with_frontend(ftq_entries=n, pfc_enabled=n > 2)
        for n in FTQ_SWEEP
    }
    results = run_matrix(configs, workloads)
    rows = []
    for n in FTQ_SWEEP:
        label = f"ftq{n}"
        speedup = _pct(geomean_speedup(results, label, f"ftq{FTQ_SWEEP[0]}"))
        exposure = {"covered": 0, "partially_exposed": 0, "fully_exposed": 0}
        for r in results[label].values():
            for k, v in r.miss_exposure().items():
                exposure[k] += v
        total = sum(exposure.values())
        exposed = exposure["partially_exposed"] + exposure["fully_exposed"]
        frac = 100.0 * exposed / total if total else 0.0
        rows.append(
            [n, speedup, exposure["covered"], exposure["partially_exposed"], exposure["fully_exposed"], frac]
        )
    return {
        "title": "Fig 14: FTQ size sensitivity (speedup over 2-entry FTQ)",
        "headers": ["FTQ entries", "speedup_%", "covered", "partial", "full", "exposed_%"],
        "rows": rows,
        "paper": {"12-entry": "+39.5%", "2-entry exposed": "76%", "24-entry": "removes 90.6% of exposed"},
    }


ALL_EXPERIMENTS = {
    "fig1": fig1,
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "fig6a": fig6a,
    "fig6b": fig6b,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
}
