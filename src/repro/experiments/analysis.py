"""Ablation and quality analyses beyond the paper's figures.

These quantify design choices DESIGN.md calls out:

* :func:`fdp_attribution`   -- decomposes FDP's speedup into run-ahead
  (FTQ depth), PFC, taken-only history, and wrong-path prefetching
  (via the diagnostic ``wrong_path_fills`` ablation).
* :func:`prefetcher_quality`-- accuracy / coverage / timeliness of each
  dedicated prefetcher, the quantities behind Fig 9's traffic argument.
* :func:`two_level_btb`     -- single-level vs two-level BTB hierarchies
  at equal total capacity (Section II-B's industry trend).
* :func:`loop_predictor_ablation` -- the Fig 2 loop predictor on/off.

Each function returns the same table-dict shape as
:mod:`repro.experiments.figures`.
"""

from __future__ import annotations

from repro.common.params import DirectionPredictorKind, HistoryPolicy, SimParams
from repro.experiments.configs import default_params, evaluation_workloads, no_fdp
from repro.experiments.runner import geomean_speedup, mean_metric, run_matrix


def _pct(ratio: float) -> float:
    return 100.0 * (ratio - 1.0)


def fdp_attribution(workloads: list[str] | None = None) -> dict:
    """Step-by-step decomposition of the FDP speedup."""
    workloads = workloads or evaluation_workloads()
    fdp = default_params()
    steps: dict[str, SimParams] = {
        "baseline (2-entry FTQ)": no_fdp(fdp),
        "+run-ahead (24-entry FTQ)": fdp.with_frontend(
            pfc_enabled=False, history_policy=HistoryPolicy.GHR0
        ),
        "+taken-only history (THR)": fdp.with_frontend(pfc_enabled=False),
        "+PFC (full FDP)": fdp,
        "full FDP, wrong-path fills off": fdp.with_frontend(wrong_path_fills=False),
    }
    results = run_matrix(steps, workloads)
    base = "baseline (2-entry FTQ)"
    rows = []
    prev = None
    for label in steps:
        total = _pct(geomean_speedup(results, label, base))
        marginal = 0.0 if prev is None else total - prev
        rows.append([label, total, marginal, mean_metric(results, label, "branch_mpki")])
        prev = total
    return {
        "title": "Ablation: FDP speedup attribution",
        "headers": ["step", "speedup_%", "marginal_pp", "branch MPKI"],
        "rows": rows,
    }


def prefetcher_quality(workloads: list[str] | None = None) -> dict:
    """Accuracy / coverage / timeliness of the dedicated prefetchers."""
    workloads = workloads or evaluation_workloads()
    base = no_fdp(default_params())
    names = [
        "nl1", "eip27", "eip128", "fnl_mma", "djolt", "rdip",
        "sn4l_dis", "profile_guided",
    ]
    configs = {"base": base}
    configs.update({n: base.replace(prefetcher=n) for n in names})
    results = run_matrix(configs, workloads)
    base_misses = sum(r.stats.get("l1i_miss") for r in results["base"].values())
    rows = []
    for name in names:
        runs = results[name].values()
        issued = sum(r.stats.get("prefetch_issued") for r in runs)
        useful = sum(r.stats.get("prefetch_useful") for r in runs)
        late = sum(r.stats.get("prefetch_late") for r in runs)
        misses = sum(r.stats.get("l1i_miss") for r in runs)
        accuracy = 100.0 * useful / issued if issued else 0.0
        coverage = 100.0 * (base_misses - misses) / base_misses if base_misses else 0.0
        speedup = _pct(geomean_speedup(results, name, "base"))
        rows.append([name, speedup, accuracy, coverage, late])
    return {
        "title": "Ablation: prefetcher accuracy / coverage / timeliness",
        "headers": ["prefetcher", "speedup_%", "accuracy_%", "coverage_%", "late fills"],
        "rows": rows,
    }


def two_level_btb(workloads: list[str] | None = None) -> dict:
    """Two-level BTB hierarchies vs flat BTBs (Section II-B trend)."""
    workloads = workloads or evaluation_workloads()
    fdp = default_params()
    configs = {
        "flat 512": fdp.with_branch(btb_entries=512),
        "flat 8K": fdp.with_branch(btb_entries=8192),
        "512 L1 + 8K L2": fdp.with_branch(btb_entries=8192, btb_l1_entries=512),
        "512 L1 + 8K L2 (slow L2)": fdp.with_branch(
            btb_entries=8192, btb_l1_entries=512, btb_l2_extra_latency=4
        ),
    }
    results = run_matrix(configs, workloads)
    rows = []
    for label in configs:
        rows.append(
            [
                label,
                _pct(geomean_speedup(results, label, "flat 512")),
                mean_metric(results, label, "branch_mpki"),
                sum(r.stats.get("btb_l2_taken_predictions") for r in results[label].values()),
            ]
        )
    return {
        "title": "Ablation: two-level BTB hierarchy (speedup over flat 512-entry)",
        "headers": ["config", "speedup_%", "branch MPKI", "L2-sourced takens"],
        "rows": rows,
    }


def loop_predictor_ablation(workloads: list[str] | None = None) -> dict:
    """Loop predictor (Fig 2) on top of TAGE, per workload."""
    workloads = workloads or evaluation_workloads()
    fdp = default_params()
    with_loop = fdp.with_branch(loop_predictor_entries=256)
    results = run_matrix({"off": fdp, "on": with_loop}, workloads)
    rows = []
    for wl in workloads:
        off, on = results["off"][wl], results["on"][wl]
        rows.append(
            [wl, _pct(on.ipc / off.ipc), off.branch_mpki, on.branch_mpki]
        )
    return {
        "title": "Ablation: loop predictor on top of TAGE",
        "headers": ["workload", "gain_%", "MPKI off", "MPKI on"],
        "rows": rows,
    }


def direction_zoo(workloads: list[str] | None = None) -> dict:
    """Extends Fig 12 with the perceptron predictor the paper cites
    (Section II-A) alongside Gshare and the TAGE sizings."""
    workloads = workloads or evaluation_workloads()
    fdp = default_params()
    configs = {
        "gshare-8KB": fdp.with_branch(direction_kind=DirectionPredictorKind.GSHARE),
        "perceptron-8KB": fdp.with_branch(direction_kind=DirectionPredictorKind.PERCEPTRON),
        "tage-9KB": fdp.with_branch(tage_storage_kib=9),
        "tage-18KB": fdp,
        "tage-36KB": fdp.with_branch(tage_storage_kib=36),
    }
    results = run_matrix(configs, workloads)
    rows = []
    for label in configs:
        rows.append(
            [
                label,
                _pct(geomean_speedup(results, label, "tage-18KB")),
                mean_metric(results, label, "branch_mpki"),
            ]
        )
    return {
        "title": "Ablation: direction predictor zoo (relative to TAGE-18KB)",
        "headers": ["predictor", "rel_perf_%", "branch MPKI"],
        "rows": rows,
    }


ALL_ABLATIONS = {
    "abl_fdp_components": fdp_attribution,
    "abl_prefetcher_quality": prefetcher_quality,
    "abl_two_level_btb": two_level_btb,
    "abl_loop_predictor": loop_predictor_ablation,
    "abl_direction_zoo": direction_zoo,
}
