"""Declarative sweep specs: matrix expansion with stable point IDs.

The paper's evaluation (Figs 4-11) is a family of config-matrix sweeps
over ``(workload x SimParams)``.  This module turns such a sweep into a
small declarative file (benchalot-style YAML or JSON) instead of a
hand-coded figure script::

    sweep: btb-pfc
    workloads: [srv_web, srv_db]          # or "quick" / "all"; entries may
                                          # also be trace-file paths or
                                          # {name: web1, trace: w.champsim.xz}
    base:                                 # applied to default_params()
      warmup_instructions: 3000
      sim_instructions: 8000
    matrix:                               # cartesian product over axes
      branch.btb_entries: [512, 8192]
      frontend.pfc_enabled: [false, true]
    exclude:                              # drop matching combinations
      - {branch.btb_entries: 512, frontend.pfc_enabled: true}
    include:                              # append extra combinations
      - {branch.btb_entries: 32768, frontend.pfc_enabled: true}
    output:
      metrics: [ipc, branch_mpki]

Axis keys are dotted paths into :class:`~repro.common.params.SimParams`
(``frontend.*``, ``branch.*``, ``memory.*``, ``core.*``, or a top-level
field such as ``prefetcher``).  Expansion is **deterministic**: axes in
file order, values in listed order, excludes filtered, includes
appended, then the config list crossed with the workload list.  Every
point's identity is the *existing content-addressed cache key*
(:func:`repro.experiments.cache.run_key` of the environment-resolved
parameters), so point IDs are stable across processes, machines and
re-parses -- which is what makes sharded and resumable execution safe:
any shard of any run of the same spec agrees on which point is which.

Sharding (``--shard k/N``) sorts points by ID and deals them round-robin,
so for every N the shards are disjoint, their union is the full
expansion, and sizes differ by at most one.

:mod:`repro.experiments.sweep` executes expansions; this module is pure
bookkeeping (parse, validate, expand, partition) and raises
:class:`SweepSpecError` on any malformed input.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass, field
from itertools import product
from pathlib import Path

try:  # optional: JSON specs work without PyYAML
    import yaml as _yaml
except ImportError:  # pragma: no cover - PyYAML ships in the dev env
    _yaml = None

from repro.common.params import SimParams
from repro.experiments.cache import run_key
from repro.experiments.configs import QUICK_WORKLOADS, default_params
from repro.experiments.runner import _resolve
from repro.trace.source import (
    looks_like_trace_path,
    register_workload,
    resolve_workload,
    trace_name_for_path,
)
from repro.trace.workloads import default_workloads

SWEEP_SPEC_VERSION = 1
"""Schema tag stamped into shard manifests and merged tables."""

PARAM_GROUPS = ("frontend", "branch", "memory", "core")
"""Dotted-key prefixes addressing the nested parameter dataclasses."""

METRICS = (
    "ipc",
    "cycles",
    "instructions",
    "branch_mpki",
    "cond_mpki",
    "l1i_mpki",
    "starvation_per_kilo",
    "tag_accesses_per_kilo",
    "exposed_fraction",
    "prefetch_accuracy",
    "prefetch_coverage",
    "prefetch_timeliness",
)
"""RunResult metrics a spec's ``output.metrics`` may request."""


class SweepSpecError(ValueError):
    """A sweep spec is malformed (bad key, value, rule or shard)."""


# ----------------------------------------------------------------------
# Parameter addressing
# ----------------------------------------------------------------------
def _field_names(cls) -> set[str]:
    return {f.name for f in dataclasses.fields(cls)}


_TOP_FIELDS = _field_names(SimParams) - set(PARAM_GROUPS)


def valid_setting_key(key: str) -> bool:
    """Whether ``key`` addresses a settable parameter field."""
    if "." in key:
        group, _, field = key.partition(".")
        if group not in PARAM_GROUPS or "." in field:
            return False
        return field in _field_names(type(getattr(SimParams(), group)))
    return key in _TOP_FIELDS


def apply_setting(params: SimParams, key: str, value) -> SimParams:
    """Return ``params`` with one dotted-key field replaced.

    Invalid keys raise :class:`SweepSpecError`; invalid *values* are
    re-raised as :class:`SweepSpecError` too, carrying the dataclass
    validation message, so a bad spec fails at expansion -- before any
    simulation is scheduled.
    """
    if not valid_setting_key(key):
        raise SweepSpecError(
            f"unknown parameter key {key!r} (expected a SimParams field or "
            f"one of {'/'.join(PARAM_GROUPS)}.<field>)"
        )
    if isinstance(value, list):
        value = tuple(value)
    try:
        if "." in key:
            group, _, field = key.partition(".")
            sub = dataclasses.replace(getattr(params, group), **{field: value})
            return params.replace(**{group: sub})
        return params.replace(**{key: value})
    except (TypeError, ValueError) as exc:
        raise SweepSpecError(f"invalid value for {key!r}: {exc}") from exc


def _fmt_value(value) -> str:
    """Deterministic human-readable form of one axis value."""
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


# ----------------------------------------------------------------------
# Spec model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepSpec:
    """One parsed, validated sweep spec (see module docstring)."""

    name: str
    workloads: tuple[str, ...]
    base: tuple[tuple[str, object], ...]
    matrix: tuple[tuple[str, tuple], ...]
    exclude: tuple[tuple[tuple[str, object], ...], ...]
    include: tuple[tuple[tuple[str, object], ...], ...]
    metrics: tuple[str, ...]
    out_dir: str | None = None
    #: Trace-backed workload entries as (registered name, file path);
    #: names in ``workloads`` appearing here came from trace files.
    traces: tuple[tuple[str, str], ...] = field(default=())

    @property
    def axes(self) -> tuple[str, ...]:
        return tuple(key for key, _ in self.matrix)

    def to_dict(self) -> dict:
        """Canonical JSON-able form; ``parse_spec`` round-trips it."""
        trace_map = dict(self.traces)
        payload: dict = {
            "sweep": self.name,
            "workloads": [
                {"name": n, "trace": trace_map[n]} if n in trace_map else n
                for n in self.workloads
            ],
            "matrix": {key: list(values) for key, values in self.matrix},
        }
        if self.base:
            payload["base"] = dict(self.base)
        if self.exclude:
            payload["exclude"] = [dict(rule) for rule in self.exclude]
        if self.include:
            payload["include"] = [dict(rule) for rule in self.include]
        output: dict = {"metrics": list(self.metrics)}
        if self.out_dir is not None:
            output["dir"] = self.out_dir
        payload["output"] = output
        return payload

    def fingerprint(self) -> str:
        """Stable content hash of the spec (shard-merge compatibility tag)."""
        blob = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()


def _register_trace_entry(path: str, name: str | None) -> str:
    """Register one trace-file workload entry; returns its name."""
    from repro.trace.champsim import ChampSimTrace

    if not os.path.isfile(path):
        raise SweepSpecError(f"trace file {path!r} does not exist")
    try:
        source = register_workload(
            ChampSimTrace(path, name=name or trace_name_for_path(path))
        )
    except ValueError as exc:
        raise SweepSpecError(str(exc)) from exc
    return source.name


def _resolve_workloads(raw) -> tuple[tuple[str, ...], tuple[tuple[str, str], ...]]:
    """Resolve the ``workloads:`` section into (names, trace entries).

    Entries may be catalogue/registered names, ``"quick"``/``"all"``
    shorthands, paths to trace files, or mappings
    ``{name: ..., trace: path}`` binding a trace file to an explicit
    registry name.  Trace entries are registered here so expansion's
    cache keys can resolve them.
    """
    if raw in (None, "all"):
        return tuple(w.name for w in default_workloads()), ()
    if raw == "quick":
        return tuple(QUICK_WORKLOADS), ()
    if isinstance(raw, str):
        raw = [n.strip() for n in raw.split(",") if n.strip()]
    if not isinstance(raw, list) or not raw:
        raise SweepSpecError("'workloads' must be 'quick', 'all' or a non-empty list")
    names: list[str] = []
    traces: list[tuple[str, str]] = []
    unknown: list[str] = []
    for entry in raw:
        if isinstance(entry, dict):
            bad = [k for k in entry if k not in ("name", "trace")]
            if bad:
                raise SweepSpecError(
                    f"unknown workload-entry key(s): {', '.join(bad)} "
                    f"(a mapping entry takes 'trace' and optional 'name')"
                )
            path = entry.get("trace")
            if not isinstance(path, str) or not path:
                raise SweepSpecError(
                    "a workload mapping entry needs a 'trace' file path"
                )
            name = _register_trace_entry(path, entry.get("name"))
            names.append(name)
            traces.append((name, path))
            continue
        if not isinstance(entry, str):
            raise SweepSpecError(
                f"workload entries must be names or trace mappings, got {entry!r}"
            )
        if looks_like_trace_path(entry):
            name = _register_trace_entry(entry, None)
            names.append(name)
            traces.append((name, entry))
            continue
        try:
            resolve_workload(entry)
        except KeyError:
            unknown.append(entry)
            continue
        names.append(entry)
    if unknown:
        raise SweepSpecError(f"unknown workloads: {', '.join(map(str, unknown))}")
    if len(set(names)) != len(names):
        raise SweepSpecError("duplicate workload names in 'workloads'")
    return tuple(names), tuple(traces)


def _parse_rule(rule, axes: tuple[str, ...], kind: str, complete: bool):
    if not isinstance(rule, dict) or not rule:
        raise SweepSpecError(f"each '{kind}' rule must be a non-empty mapping")
    unknown = [k for k in rule if k not in axes]
    if unknown:
        raise SweepSpecError(
            f"'{kind}' rule references non-matrix key(s): {', '.join(unknown)}"
        )
    if complete and set(rule) != set(axes):
        missing = [k for k in axes if k not in rule]
        raise SweepSpecError(
            f"'{kind}' rule must assign every matrix axis (missing: {', '.join(missing)})"
        )
    return tuple((key, rule[key]) for key in axes if key in rule)


def parse_spec(data: dict, name_hint: str = "sweep") -> SweepSpec:
    """Validate a raw spec mapping into a :class:`SweepSpec`."""
    if not isinstance(data, dict):
        raise SweepSpecError("spec root must be a mapping")
    known_top = {"sweep", "workloads", "base", "matrix", "exclude", "include", "output"}
    unknown = [k for k in data if k not in known_top]
    if unknown:
        raise SweepSpecError(f"unknown top-level spec key(s): {', '.join(unknown)}")

    name = data.get("sweep", name_hint)
    if not isinstance(name, str) or not name:
        raise SweepSpecError("'sweep' (the sweep name) must be a non-empty string")

    raw_matrix = data.get("matrix", {})
    if not isinstance(raw_matrix, dict):
        raise SweepSpecError("'matrix' must be a mapping of axis -> value list")
    matrix = []
    for key, values in raw_matrix.items():
        if not valid_setting_key(key):
            raise SweepSpecError(f"unknown matrix axis {key!r}")
        if not isinstance(values, list) or not values:
            raise SweepSpecError(f"matrix axis {key!r} needs a non-empty value list")
        hashable = [tuple(v) if isinstance(v, list) else v for v in values]
        if len(set(hashable)) != len(hashable):
            raise SweepSpecError(f"matrix axis {key!r} has duplicate values")
        matrix.append((key, tuple(values)))

    base = data.get("base", {})
    if not isinstance(base, dict):
        raise SweepSpecError("'base' must be a mapping of parameter -> value")
    for key in base:
        if not valid_setting_key(key):
            raise SweepSpecError(f"unknown base parameter key {key!r}")
        if any(key == axis for axis, _ in matrix):
            raise SweepSpecError(f"{key!r} appears in both 'base' and 'matrix'")

    axes = tuple(key for key, _ in matrix)
    exclude = tuple(
        _parse_rule(rule, axes, "exclude", complete=False)
        for rule in _as_rule_list(data.get("exclude"), "exclude")
    )
    include = tuple(
        _parse_rule(rule, axes, "include", complete=True)
        for rule in _as_rule_list(data.get("include"), "include")
    )

    output = data.get("output", {})
    if not isinstance(output, dict):
        raise SweepSpecError("'output' must be a mapping")
    unknown = [k for k in output if k not in ("metrics", "dir")]
    if unknown:
        raise SweepSpecError(f"unknown 'output' key(s): {', '.join(unknown)}")
    metrics = output.get("metrics", ["ipc"])
    if not isinstance(metrics, list) or not metrics:
        raise SweepSpecError("'output.metrics' must be a non-empty list")
    bad = [m for m in metrics if m not in METRICS]
    if bad:
        raise SweepSpecError(
            f"unknown metric(s) {', '.join(map(str, bad))}; known: {', '.join(METRICS)}"
        )
    out_dir = output.get("dir")
    if out_dir is not None and not isinstance(out_dir, str):
        raise SweepSpecError("'output.dir' must be a string path")

    workloads, traces = _resolve_workloads(data.get("workloads"))
    return SweepSpec(
        name=name,
        workloads=workloads,
        base=tuple(base.items()),
        matrix=tuple(matrix),
        exclude=exclude,
        include=include,
        metrics=tuple(metrics),
        out_dir=out_dir,
        traces=traces,
    )


def _as_rule_list(raw, kind: str) -> list:
    if raw is None:
        return []
    if not isinstance(raw, list):
        raise SweepSpecError(f"'{kind}' must be a list of mappings")
    return raw


def load_spec(path: str | Path) -> SweepSpec:
    """Parse a spec file (``.yaml``/``.yml`` via PyYAML, else JSON)."""
    path = Path(path)
    text = path.read_text()
    if path.suffix.lower() in (".yaml", ".yml"):
        if _yaml is None:
            raise SweepSpecError(
                f"{path}: PyYAML is not installed; use a JSON spec instead"
            )
        try:
            data = _yaml.safe_load(text)
        except _yaml.YAMLError as exc:
            raise SweepSpecError(f"{path}: invalid YAML: {exc}") from exc
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SweepSpecError(f"{path}: invalid JSON: {exc}") from exc
    return parse_spec(data, name_hint=path.stem)


# ----------------------------------------------------------------------
# Expansion
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepPoint:
    """One (workload, configuration) simulation of an expanded sweep.

    ``point_id`` is the content-addressed cache key of the
    environment-resolved parameters -- the same key the runner and the
    disk cache use -- so shards, resumed runs and independent machines
    all agree on point identity.
    """

    index: int
    workload: str
    label: str
    settings: tuple[tuple[str, object], ...]
    params: SimParams
    point_id: str

    @property
    def settings_dict(self) -> dict:
        return dict(self.settings)


def _matching(assignment: dict, rule: tuple[tuple[str, object], ...]) -> bool:
    return all(assignment.get(key) == value for key, value in rule)


def expand(spec: SweepSpec) -> list[SweepPoint]:
    """Deterministically expand a spec into its ordered point list.

    Order: matrix axes in file order, values in listed order (the last
    axis varies fastest), excludes filtered, includes appended, then
    each surviving configuration crossed with the workload list.
    Raises :class:`SweepSpecError` when the expansion is empty or two
    configurations collapse to the same point (duplicate include, or an
    axis that does not affect the resolved parameters).
    """
    base_params = default_params()
    for key, value in spec.base:
        base_params = apply_setting(base_params, key, value)

    assignments: list[dict] = []
    if spec.matrix:
        axes = spec.axes
        for combo in product(*(values for _, values in spec.matrix)):
            assignment = dict(zip(axes, combo))
            if any(_matching(assignment, rule) for rule in spec.exclude):
                continue
            assignments.append(assignment)
    else:
        assignments.append({})
    for rule in spec.include:
        assignments.append(dict(rule))

    points: list[SweepPoint] = []
    seen: dict[str, str] = {}
    index = 0
    for assignment in assignments:
        params = base_params
        for key, value in assignment.items():
            params = apply_setting(params, key, value)
        label = (
            ",".join(f"{k}={_fmt_value(v)}" for k, v in assignment.items())
            or "base"
        )
        for workload in spec.workloads:
            point_id = run_key(workload, _resolve(params))
            previous = seen.get(point_id)
            if previous is not None:
                raise SweepSpecError(
                    f"duplicate point: ({workload}, {label}) collides with "
                    f"({previous}) -- remove the duplicate include rule or "
                    f"the no-op axis"
                )
            seen[point_id] = f"{workload}, {label}"
            points.append(
                SweepPoint(
                    index=index,
                    workload=workload,
                    label=label,
                    settings=tuple(assignment.items()),
                    params=params,
                    point_id=point_id,
                )
            )
            index += 1
    if not points:
        raise SweepSpecError("spec expands to zero points (everything excluded)")
    return points


# ----------------------------------------------------------------------
# Sharding
# ----------------------------------------------------------------------
def parse_shard(text: str) -> tuple[int, int]:
    """Parse ``"k/N"`` into a 1-based (shard, total) pair.

    Raises :class:`SweepSpecError` with a usable message on anything
    else -- ``3/2``, ``0/2``, ``a/b``, a bare ``2`` -- because a
    silently mis-parsed shard spec is exactly how points get dropped.
    """
    parts = text.strip().split("/")
    if len(parts) != 2:
        raise SweepSpecError(
            f"invalid shard {text!r}: expected k/N (e.g. --shard 2/4)"
        )
    try:
        k, total = int(parts[0]), int(parts[1])
    except ValueError:
        raise SweepSpecError(
            f"invalid shard {text!r}: k and N must be integers"
        ) from None
    if total < 1:
        raise SweepSpecError(f"invalid shard {text!r}: N must be at least 1")
    if not 1 <= k <= total:
        raise SweepSpecError(
            f"invalid shard {text!r}: k must be between 1 and N={total}"
        )
    return k, total


def shard_points(points: list[SweepPoint], shard: int, total: int) -> list[SweepPoint]:
    """The subset of ``points`` owned by 1-based shard ``shard`` of ``total``.

    Points are ranked by their stable IDs and dealt round-robin, so the
    partition is independent of expansion order, process, platform and
    machine: for every N the shards are disjoint, the union over k is
    the full expansion, and shard sizes differ by at most one.  The
    returned subset preserves expansion order.
    """
    if not 1 <= shard <= total:
        raise SweepSpecError(f"shard {shard}/{total} out of range")
    rank = {
        point_id: pos
        for pos, point_id in enumerate(sorted(p.point_id for p in points))
    }
    return [p for p in points if rank[p.point_id] % total == shard - 1]


def metric_value(result, metric: str) -> float | int:
    """Extract one validated metric from a :class:`RunResult`."""
    value = getattr(result, metric)
    return value() if callable(value) else value
