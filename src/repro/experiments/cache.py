"""Content-addressed persistent result cache.

Every simulation is a pure function of ``(workload, SimParams)`` -- the
trace generators are seeded and the simulator is deterministic -- so
:class:`RunResult` objects can be stored on disk and replayed on any
later invocation.  Keys are stable SHA-256 fingerprints of the
*content* of the workload spec and the parameter bundle (not object
identity), so equal-but-distinct param objects built through
``dataclasses.replace`` hash to the same entry.

Layout: one pickle file per result under ``results/.cache/`` (override
with ``REPRO_CACHE_DIR``), named ``<key>.pkl``.  Each payload carries a
schema tag; entries written by an older schema are *stale* and treated
as misses (and deleted on sight).  Bump :data:`SIM_SCHEMA_VERSION`
whenever a change to the simulator, trace generators or predictors can
alter results -- the key embeds it, so every old entry invalidates at
once.

Session counters (hits/misses/stale/stores plus the runner's memo and
simulation counts) live in a :class:`repro.common.stats.StatSet`
exposed through :func:`cache_stats`; ``repro cache info`` prints them.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
from enum import Enum
from functools import lru_cache
from pathlib import Path

from repro.common.params import SimParams
from repro.common.stats import StatSet
from repro.core.metrics import RunResult
from repro.trace.workloads import WorkloadSpec, workload_by_name

SIM_SCHEMA_VERSION = 4
"""Bump when simulator/trace/predictor changes can alter RunResults.

v2: the sweep runner defaults ``SimParams.warmup_mode`` to
``functional`` (fast-forward warmup); the mode is resolved before
keying, so cycle- and functional-warmup results never share entries.

v3: ``SimParams`` grew ``check_invariants`` (the runtime invariant
layer), changing parameter fingerprints; ``REPRO_CHECK`` is resolved
before keying, so checked and unchecked sweep results never share
entries (they are bit-identical, but a checked sweep must actually run
the checker).

v4: ``BranchPredictorParams`` grew ``btb_variant`` (the registry-driven
build layer), changing parameter fingerprints.
"""

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_ENABLED = "REPRO_CACHE"

#: Session-wide cache statistics (read with ``repro cache info``):
#: ``cache_disk_hit`` / ``cache_disk_miss`` / ``cache_stale`` /
#: ``cache_store`` / ``cache_memo_hit`` / ``sim_runs``.
CACHE_STATS = StatSet()


def cache_stats() -> StatSet:
    """The session's cache/runner counter set."""
    return CACHE_STATS


def cache_enabled() -> bool:
    """Disk caching on/off (``REPRO_CACHE=0`` disables; default on)."""
    return os.environ.get(_ENV_ENABLED, "1").strip().lower() not in ("0", "off", "no", "false")


def default_cache_dir() -> Path:
    """``REPRO_CACHE_DIR`` or ``results/.cache`` next to the repo root."""
    raw = os.environ.get(_ENV_DIR)
    if raw:
        return Path(raw)
    return Path(__file__).resolve().parents[3] / "results" / ".cache"


# ----------------------------------------------------------------------
# Stable fingerprints
# ----------------------------------------------------------------------
def _canonical(obj):
    """Reduce dataclasses/enums/tuples to canonical JSON-able values."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: _canonical(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
    if isinstance(obj, Enum):
        return obj.value
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    return obj


@lru_cache(maxsize=4096)
def params_fingerprint(params: SimParams) -> str:
    """Stable content hash of a parameter bundle."""
    blob = json.dumps(_canonical(params), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@lru_cache(maxsize=256)
def workload_fingerprint(workload: WorkloadSpec | str) -> str:
    """Stable content hash of a workload (catalogue name or explicit spec)."""
    spec = workload_by_name(workload) if isinstance(workload, str) else workload
    blob = json.dumps(_canonical(spec), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@lru_cache(maxsize=8192)
def run_key(workload: WorkloadSpec | str, params: SimParams) -> str:
    """Content-addressed key of one (workload, configuration) simulation."""
    blob = json.dumps(
        {
            "schema": SIM_SCHEMA_VERSION,
            "workload": workload_fingerprint(workload),
            "params": params_fingerprint(params),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()


# ----------------------------------------------------------------------
# Disk cache
# ----------------------------------------------------------------------
class ResultCache:
    """Pickle-per-entry result store keyed by :func:`run_key`."""

    def __init__(self, directory: Path | str | None = None, stats: StatSet | None = None) -> None:
        self.directory = Path(directory) if directory is not None else default_cache_dir()
        self.stats = stats if stats is not None else CACHE_STATS

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def get(self, key: str) -> RunResult | None:
        """Load a cached result; None on miss or stale/corrupt entry."""
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                payload = pickle.load(fh)
                bytes_read = fh.tell()
        except FileNotFoundError:
            self.stats.bump("cache_disk_miss")
            return None
        except Exception:
            # Unreadable/corrupt entry: stale by definition.
            self.stats.bump("cache_stale")
            path.unlink(missing_ok=True)
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != SIM_SCHEMA_VERSION
            or not isinstance(payload.get("result"), RunResult)
        ):
            self.stats.bump("cache_stale")
            path.unlink(missing_ok=True)
            return None
        self.stats.bump("cache_disk_hit")
        self.stats.bump("cache_bytes_read", bytes_read)
        return payload["result"]

    def put(self, key: str, result: RunResult) -> None:
        """Store one result atomically (tmp file + rename)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        payload = {"schema": SIM_SCHEMA_VERSION, "key": key, "result": result}
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        try:
            tmp.write_bytes(blob)
            tmp.replace(path)
        except OSError:
            # Caching is best-effort; a full/read-only disk must not
            # fail the experiment run.
            tmp.unlink(missing_ok=True)
            return
        self.stats.bump("cache_store")
        self.stats.bump("cache_bytes_written", len(blob))

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        for path in self.directory.glob("*.pkl"):
            path.unlink(missing_ok=True)
            removed += 1
        for path in self.directory.glob("*.tmp.*"):
            path.unlink(missing_ok=True)
        return removed

    def info(self) -> dict:
        """Entry count and total bytes on disk plus session counters."""
        entries = 0
        total_bytes = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.pkl"):
                try:
                    total_bytes += path.stat().st_size
                except OSError:
                    continue
                entries += 1
        return {
            "directory": str(self.directory),
            "schema": SIM_SCHEMA_VERSION,
            "entries": entries,
            "total_bytes": total_bytes,
            "session": self.stats.as_dict(),
        }
