"""Content-addressed persistent result cache.

Every simulation is a pure function of ``(workload, SimParams)`` -- the
trace generators are seeded and the simulator is deterministic -- so
:class:`RunResult` objects can be stored on disk and replayed on any
later invocation.  Keys are stable SHA-256 fingerprints of the
*content* of the workload spec and the parameter bundle (not object
identity), so equal-but-distinct param objects built through
``dataclasses.replace`` hash to the same entry.

Layout: one pickle file per result under ``results/.cache/`` (override
with ``REPRO_CACHE_DIR``), named ``<key>.pkl``.  Each payload carries a
schema tag; entries written by an older schema are *stale* and treated
as misses (and deleted on sight).  Bump :data:`SIM_SCHEMA_VERSION`
whenever a change to the simulator, trace generators or predictors can
alter results -- the key embeds it, so every old entry invalidates at
once.

Session counters (hits/misses/stale/stores plus the runner's memo and
simulation counts) live in a :class:`repro.common.stats.StatSet`
exposed through :func:`cache_stats`; ``repro cache info`` prints them.
"""

from __future__ import annotations

import dataclasses
import datetime
import hashlib
import json
import os
import pickle
import platform as platform_mod
import shutil
from enum import Enum
from functools import lru_cache
from pathlib import Path

from repro import __version__ as repro_version
from repro.common.params import SimParams
from repro.common.stats import StatSet
from repro.core.metrics import RunResult
from repro.core.typed import kernel_backend_for_params
from repro.trace.source import WorkloadSource, resolve_workload
from repro.trace.workloads import WorkloadSpec

SIM_SCHEMA_VERSION = 6
"""Bump when simulator/trace/predictor changes can alter RunResults.

v2: the sweep runner defaults ``SimParams.warmup_mode`` to
``functional`` (fast-forward warmup); the mode is resolved before
keying, so cycle- and functional-warmup results never share entries.

v3: ``SimParams`` grew ``check_invariants`` (the runtime invariant
layer), changing parameter fingerprints; ``REPRO_CHECK`` is resolved
before keying, so checked and unchecked sweep results never share
entries (they are bit-identical, but a checked sweep must actually run
the checker).

v4: ``BranchPredictorParams`` grew ``btb_variant`` (the registry-driven
build layer), changing parameter fingerprints.

v5: ``SimParams`` grew ``kernel`` (the typed/interpreted cycle-kernel
backend selection), changing parameter fingerprints; ``REPRO_KERNEL``
is resolved before keying, so typed and forced-interp results never
share entries (bit-identical by contract, but a forced sweep must run
the backend it names).

v6: the workload-source layer -- workload fingerprints now derive from
each source's ``fingerprint_data()`` (synthetic: spec + seeds;
ChampSim traces: file content digest + decoder version), changing
every workload fingerprint at once.
"""

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_ENABLED = "REPRO_CACHE"

#: Session-wide cache statistics (read with ``repro cache info``):
#: ``cache_disk_hit`` / ``cache_disk_miss`` / ``cache_stale`` /
#: ``cache_store`` / ``cache_memo_hit`` / ``sim_runs``.
CACHE_STATS = StatSet()


def cache_stats() -> StatSet:
    """The session's cache/runner counter set."""
    return CACHE_STATS


def cache_enabled() -> bool:
    """Disk caching on/off (``REPRO_CACHE=0`` disables; default on)."""
    return os.environ.get(_ENV_ENABLED, "1").strip().lower() not in ("0", "off", "no", "false")


def default_cache_dir() -> Path:
    """``REPRO_CACHE_DIR`` or ``results/.cache`` next to the repo root."""
    raw = os.environ.get(_ENV_DIR)
    if raw:
        return Path(raw)
    return Path(__file__).resolve().parents[3] / "results" / ".cache"


# ----------------------------------------------------------------------
# Stable fingerprints
# ----------------------------------------------------------------------
def _canonical(obj):
    """Reduce dataclasses/enums/tuples to canonical JSON-able values."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: _canonical(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
    if isinstance(obj, Enum):
        return obj.value
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    return obj


@lru_cache(maxsize=4096)
def params_fingerprint(params: SimParams) -> str:
    """Stable content hash of a parameter bundle."""
    blob = json.dumps(_canonical(params), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _workload_fingerprint_of(source: WorkloadSource | WorkloadSpec) -> str:
    """Hash a resolved source via its ``fingerprint_data()`` identity."""
    if hasattr(source, "fingerprint_data"):
        data = source.fingerprint_data()
    else:
        data = _canonical(source)
    blob = json.dumps(_canonical(data), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@lru_cache(maxsize=256)
def _workload_fingerprint_by_name(name: str) -> str:
    return _workload_fingerprint_of(resolve_workload(name))


def workload_fingerprint(workload: WorkloadSource | WorkloadSpec | str) -> str:
    """Stable content hash of a workload (name, spec, or source object).

    Names go through a name-keyed memo (cleared on registry changes);
    source objects -- which may be unhashable, e.g. a ``ChampSimTrace``
    -- are fingerprinted directly.
    """
    if isinstance(workload, str):
        return _workload_fingerprint_by_name(workload)
    return _workload_fingerprint_of(workload)


workload_fingerprint.cache_clear = _workload_fingerprint_by_name.cache_clear  # type: ignore[attr-defined]


def _run_key_blob(workload_fp: str, params: SimParams) -> str:
    blob = json.dumps(
        {
            "schema": SIM_SCHEMA_VERSION,
            "workload": workload_fp,
            "params": params_fingerprint(params),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()


@lru_cache(maxsize=8192)
def _run_key_by_name(name: str, params: SimParams) -> str:
    return _run_key_blob(_workload_fingerprint_by_name(name), params)


def run_key(workload: WorkloadSource | WorkloadSpec | str, params: SimParams) -> str:
    """Content-addressed key of one (workload, configuration) simulation."""
    if isinstance(workload, str):
        return _run_key_by_name(workload, params)
    return _run_key_blob(_workload_fingerprint_of(workload), params)


run_key.cache_clear = _run_key_by_name.cache_clear  # type: ignore[attr-defined]


MANIFEST_SCHEMA_VERSION = 1
"""Schema tag of the provenance sidecar manifests (``<key>.manifest.json``)."""


def build_manifest(key: str, result: RunResult, meta: dict | None = None) -> dict:
    """The provenance record written alongside one cached result.

    Answers "where did this number come from" for a warm cache: what
    was simulated (workload, config digest, resolved warmup/check
    modes), by which code (simulation schema + package version), on
    what host, and at what cost (wall seconds, peak RSS, batch mode --
    supplied by the runner through ``meta``).
    """
    params = result.params
    try:
        source = resolve_workload(result.workload)
        workload_source = source.source_kind
        workload_category = source.category
        workload_fp = _workload_fingerprint_of(source)
    except KeyError:
        # A source object that was never registered under its name;
        # the manifest still records the run, just without provenance.
        workload_source = "unknown"
        workload_category = "unknown"
        workload_fp = None
    manifest = {
        "manifest_schema": MANIFEST_SCHEMA_VERSION,
        "schema": SIM_SCHEMA_VERSION,
        "key": key,
        "workload": result.workload,
        "workload_source": workload_source,
        "workload_category": workload_category,
        "workload_fingerprint": workload_fp,
        "label": result.label,
        "params_fingerprint": params_fingerprint(params),
        "warmup_mode": params.warmup_mode,
        "check_invariants": params.check_invariants,
        "kernel": params.kernel,
        "kernel_backend": kernel_backend_for_params(params),
        "prefetcher": params.prefetcher,
        "warmup_instructions": params.warmup_instructions,
        "sim_instructions": params.sim_instructions,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "ipc": result.ipc,
        "created_utc": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "repro_version": repro_version,
        "host": {
            "platform": platform_mod.platform(),
            "machine": platform_mod.machine(),
            "python": platform_mod.python_version(),
            "implementation": platform_mod.python_implementation(),
        },
    }
    if meta:
        manifest.update(meta)
    return manifest


# ----------------------------------------------------------------------
# Disk cache
# ----------------------------------------------------------------------
class ResultCache:
    """Pickle-per-entry result store keyed by :func:`run_key`.

    Each stored result gets a human-readable provenance sidecar
    (``<key>.manifest.json``, see :func:`build_manifest`), surfaced via
    ``repro cache info --manifests``.  Manifests are best-effort
    derived data: a missing or unreadable manifest never invalidates
    its result entry.
    """

    def __init__(self, directory: Path | str | None = None, stats: StatSet | None = None) -> None:
        self.directory = Path(directory) if directory is not None else default_cache_dir()
        self.stats = stats if stats is not None else CACHE_STATS

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def _manifest_path(self, key: str) -> Path:
        return self.directory / f"{key}.manifest.json"

    def contains(self, key: str) -> bool:
        """Whether an entry exists on disk, without loading it.

        A cheap pre-scan probe (the sweep scheduler's ``--resume``
        reporting); the entry may still turn out stale on ``get``.
        """
        return self._path(key).is_file()

    def get(self, key: str) -> RunResult | None:
        """Load a cached result; None on miss or stale/corrupt entry."""
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                payload = pickle.load(fh)
                bytes_read = fh.tell()
        except FileNotFoundError:
            self.stats.bump("cache_disk_miss")
            return None
        except Exception:
            # Unreadable/corrupt entry: stale by definition.
            self.stats.bump("cache_stale")
            path.unlink(missing_ok=True)
            self._manifest_path(key).unlink(missing_ok=True)
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != SIM_SCHEMA_VERSION
            or not isinstance(payload.get("result"), RunResult)
        ):
            self.stats.bump("cache_stale")
            path.unlink(missing_ok=True)
            self._manifest_path(key).unlink(missing_ok=True)
            return None
        self.stats.bump("cache_disk_hit")
        self.stats.bump("cache_bytes_read", bytes_read)
        return payload["result"]

    def put(self, key: str, result: RunResult, meta: dict | None = None) -> None:
        """Store one result atomically (tmp file + rename).

        ``meta`` carries runner-supplied provenance fields (wall time,
        peak RSS, worker pid, batch mode) merged into the sidecar
        manifest.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        payload = {"schema": SIM_SCHEMA_VERSION, "key": key, "result": result}
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        try:
            tmp.write_bytes(blob)
            tmp.replace(path)
        except OSError:
            # Caching is best-effort; a full/read-only disk must not
            # fail the experiment run.
            tmp.unlink(missing_ok=True)
            return
        self.stats.bump("cache_store")
        self.stats.bump("cache_bytes_written", len(blob))
        self._put_manifest(key, result, meta)

    def _put_manifest(self, key: str, result: RunResult, meta: dict | None) -> None:
        """Write the provenance sidecar (best-effort, atomic)."""
        path = self._manifest_path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            tmp.write_text(
                json.dumps(build_manifest(key, result, meta), indent=2, sort_keys=True)
                + "\n"
            )
            tmp.replace(path)
        except OSError:
            tmp.unlink(missing_ok=True)

    def get_manifest(self, key: str) -> dict | None:
        """Load one provenance manifest; None when absent or unreadable."""
        try:
            payload = json.loads(self._manifest_path(key).read_text())
        except (OSError, json.JSONDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    def manifests(self) -> list[dict]:
        """Every readable provenance manifest, newest first."""
        if not self.directory.is_dir():
            return []
        out = []
        for path in self.directory.glob("*.manifest.json"):
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if isinstance(payload, dict):
                out.append(payload)
        out.sort(key=lambda m: m.get("created_utc", ""), reverse=True)
        return out

    def _traces_dir(self) -> Path:
        """The trace chunk-artifact store (``traces/<digest>/``), written
        by :mod:`repro.trace.champsim` under the same cache root."""
        return self.directory / "traces"

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed.

        Manifests, stray temp files and the ``traces/`` decode-artifact
        store are removed too (all derived data; none count toward
        ``removed``).
        """
        removed = 0
        if not self.directory.is_dir():
            return removed
        for path in self.directory.glob("*.pkl"):
            path.unlink(missing_ok=True)
            removed += 1
        for path in self.directory.glob("*.manifest.json"):
            path.unlink(missing_ok=True)
        for path in self.directory.glob("*.tmp.*"):
            path.unlink(missing_ok=True)
        shutil.rmtree(self._traces_dir(), ignore_errors=True)
        return removed

    def info(self) -> dict:
        """Entry count and total bytes on disk plus session counters."""
        entries = 0
        total_bytes = 0
        manifests = 0
        trace_files = 0
        trace_bytes = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.pkl"):
                try:
                    total_bytes += path.stat().st_size
                except OSError:
                    continue
                entries += 1
            manifests = sum(1 for _ in self.directory.glob("*.manifest.json"))
        traces_dir = self._traces_dir()
        if traces_dir.is_dir():
            for path in traces_dir.rglob("*"):
                try:
                    if not path.is_file():
                        continue
                    trace_bytes += path.stat().st_size
                except OSError:
                    continue
                trace_files += 1
        session = self.stats.as_dict()
        hits = session.get("cache_disk_hit", 0) + session.get("cache_memo_hit", 0)
        lookups = hits + session.get("cache_disk_miss", 0)
        return {
            "directory": str(self.directory),
            "schema": SIM_SCHEMA_VERSION,
            "entries": entries,
            "manifests": manifests,
            "total_bytes": total_bytes,
            "trace_files": trace_files,
            "trace_bytes": trace_bytes,
            "session": session,
            "session_hit_rate": (hits / lookups) if lookups else 0.0,
        }
