"""Canonical experiment configurations.

The defaults mirror Table IV (Sunny Cove-like core, 32KB L1I, 8K-entry
BTB, 18KB TAGE with 260-bit taken-only target history, 24-entry FTQ,
2x prediction bandwidth, PFC enabled).  Instruction windows are scaled
for a pure-Python simulator -- 25K warmup + 60K measured by default --
and adjustable through environment variables:

* ``REPRO_WARMUP``     -- warmup instructions (default 25000)
* ``REPRO_SIM``        -- measured instructions (default 60000)
* ``REPRO_WORKLOADS``  -- ``all`` (default), ``quick`` (a 4-workload
  subset covering all three categories), or a comma-separated list of
  catalogue names, registered trace names, or trace file paths.
* ``REPRO_TRACES``     -- ``os.pathsep``-separated ChampSim trace files
  (or directories of them) registered as workload sources at first
  lookup (see :mod:`repro.trace.source` and docs/TRACES.md).
* ``REPRO_JOBS``       -- worker processes for sweep execution
  (default: ``os.cpu_count()``; ``1`` forces the serial in-process
  path).
* ``REPRO_CACHE_DIR`` / ``REPRO_CACHE`` -- persistent result-cache
  location / on-off switch (see :mod:`repro.experiments.cache`).
"""

from __future__ import annotations

import os

from repro.common.params import SimParams
from repro.trace.workloads import default_workloads

QUICK_WORKLOADS = ["srv_web", "srv_db", "clt_browser", "spc_int_a"]

DEFAULT_WARMUP = 25_000
DEFAULT_SIM = 60_000


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None
    if value <= 0:
        raise ValueError(f"{name} must be positive")
    return value


def repro_jobs() -> int:
    """Worker processes for sweeps (``REPRO_JOBS``, default cpu count)."""
    raw = os.environ.get("REPRO_JOBS")
    if raw is None or not raw.strip():
        return os.cpu_count() or 1
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"REPRO_JOBS must be an integer, got {raw!r}") from None
    if value <= 0:
        raise ValueError("REPRO_JOBS must be positive")
    return value


def default_params() -> SimParams:
    """The paper's FDP configuration (Table IV)."""
    return SimParams(
        warmup_instructions=_env_int("REPRO_WARMUP", DEFAULT_WARMUP),
        sim_instructions=_env_int("REPRO_SIM", DEFAULT_SIM),
    )


def no_fdp(params: SimParams) -> SimParams:
    """Disable FDP: 2-entry FTQ (16 instructions) and no PFC (Section V)."""
    return params.with_frontend(ftq_entries=2, pfc_enabled=False)


def baseline_params() -> SimParams:
    """The evaluation baseline: no FDP, no prefetching."""
    return no_fdp(default_params())


def evaluation_workloads() -> list[str]:
    """Workload names selected by ``REPRO_WORKLOADS``.

    Explicit names may be catalogue entries, registered trace sources
    (e.g. discovered through ``REPRO_TRACES``), or trace file paths
    (auto-registered under their canonical names).
    """
    from repro.trace.source import resolve_workload

    raw = os.environ.get("REPRO_WORKLOADS", "all").strip()
    if raw == "all":
        return [w.name for w in default_workloads()]
    if raw == "quick":
        return list(QUICK_WORKLOADS)
    entries = [n.strip() for n in raw.split(",") if n.strip()]
    names = []
    unknown = []
    for entry in entries:
        try:
            names.append(resolve_workload(entry).name)
        except KeyError:
            unknown.append(entry)
    if unknown:
        raise ValueError(f"unknown workloads in REPRO_WORKLOADS: {unknown}")
    if not names:
        raise ValueError("REPRO_WORKLOADS selected no workloads")
    return names
