"""Simulator throughput benchmark (``repro bench``).

Measures *simulated instructions per second of wall clock* -- the
number that bounds every sweep -- on the quick workload set, and writes
``BENCH_core.json`` so the performance trajectory of the pure-Python
cycle loop is tracked PR over PR.

Methodology:

* Trace generation happens outside the timed region (sweeps amortise
  it across dozens of configurations; the cycle loop is what we track).
* Each workload runs ``repeats`` times single-process with caching
  bypassed (a benchmark that reads the result cache would measure
  pickle, not simulation); the best repeat is reported to suppress
  scheduler noise.
* The headline number is the geometric mean of per-workload rates
  (schema 2; it weights every workload equally, where the total-over-
  total ratio lets one slow workload dominate), with the totals kept
  alongside.
* ``--batched`` benchmarks the lockstep batch path
  (:mod:`repro.core.batch`): ``batch_width`` identical instances per
  workload advance in lockstep, and the rate counts every instance's
  instructions -- the sweep-throughput number a batch-grouped
  ``repro sweep`` actually sees, directly comparable to the scalar
  rate.

Every run can append one line to ``BENCH_history.jsonl`` (platform-
stamped) so the perf trajectory lives in-repo; ``compare_bench`` gates
per-workload, not aggregate-only, so a regression on one workload
cannot hide behind gains elsewhere.
"""

from __future__ import annotations

import datetime
import json
import platform
import time
from pathlib import Path

from repro.common.params import SimParams
from repro.common.stats import geomean
from repro.core.batch import run_batch
from repro.core.simulator import Simulator
from repro.core.typed import kernel_backend_for_params, resolve_kernel_mode
from repro.experiments.configs import QUICK_WORKLOADS, default_params
from repro.trace.workloads import make_trace

BENCH_SCHEMA_VERSION = 2
DEFAULT_OUTPUT = "BENCH_core.json"
HISTORY_FILE = "BENCH_history.jsonl"
DEFAULT_BENCH_BATCH_WIDTH = 4


def bench_workload(
    workload: str,
    params: SimParams,
    repeats: int = 1,
) -> dict:
    """Time one workload; returns its per-run metrics (best of repeats)."""
    n = params.warmup_instructions + params.sim_instructions
    program, stream = make_trace(workload, n)  # untimed: setup, not simulation
    best_wall = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        sim = Simulator(params, program, stream)
        t0 = time.perf_counter()
        run = sim.run(workload_name=workload)
        wall = time.perf_counter() - t0
        if wall < best_wall:
            best_wall = wall
            result = run
    return {
        "instructions": n,
        "measured_instructions": result.instructions,
        "cycles": result.cycles,
        "ipc": result.ipc,
        "wall_seconds": best_wall,
        "instructions_per_second": n / best_wall if best_wall > 0 else 0.0,
    }


def bench_workload_batched(
    workload: str,
    params: SimParams,
    repeats: int = 1,
    width: int = DEFAULT_BENCH_BATCH_WIDTH,
) -> dict:
    """Time one workload on the lockstep batch path (best of repeats).

    ``width`` identical instances advance in lockstep; the rate counts
    all ``width * n`` simulated instructions over the batch's wall
    time, which is what a batch-grouped sweep gets per worker.  The
    members are bit-identical runs, so ``cycles``/``ipc`` report the
    first instance (all agree; pinned by ``tests/test_batch.py``).
    """
    n = params.warmup_instructions + params.sim_instructions
    width = max(1, width)
    program, stream = make_trace(workload, n)  # untimed: setup, not simulation
    best_wall = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        sims = [Simulator(params, program, stream) for _ in range(width)]
        t0 = time.perf_counter()
        runs = run_batch(sims, [workload] * width)
        wall = time.perf_counter() - t0
        if wall < best_wall:
            best_wall = wall
            result = runs[0]
    total = n * width
    return {
        "instructions": total,
        "batch_width": width,
        "measured_instructions": result.instructions,
        "cycles": result.cycles,
        "ipc": result.ipc,
        "wall_seconds": best_wall,
        "instructions_per_second": total / best_wall if best_wall > 0 else 0.0,
    }


def run_bench(
    workloads: list[str] | None = None,
    params: SimParams | None = None,
    repeats: int = 1,
    fast_warmup: bool = False,
    batched: bool = False,
    batch_width: int = DEFAULT_BENCH_BATCH_WIDTH,
    kernel: str | None = None,
) -> dict:
    """Benchmark the cycle loop; returns the BENCH_core payload.

    ``fast_warmup`` switches the runs to functional fast-forward warmup
    (``repro bench --fast-warmup``); the reported rate still counts the
    warmup instructions -- they are simulated, just architecturally --
    so the speedup from skipping cycle-accurate warmup shows up in
    ``instructions_per_second`` directly.  ``batched`` benchmarks the
    lockstep batch path instead of one scalar instance per workload.
    ``kernel`` overrides the cycle-kernel mode (mirrors
    ``REPRO_KERNEL``); the *resolved* mode and the concrete backend the
    scalar runs select (``typed-compiled`` / ``typed-python`` /
    ``interp``) are recorded in the payload's config, so benchmark
    numbers from different backends are never mistaken for the same
    series (batched runs always drive the interpreted stepping
    kernels).
    """
    workloads = workloads or list(QUICK_WORKLOADS)
    params = params or default_params()
    if fast_warmup:
        params = params.replace(warmup_mode="functional")
    if kernel is not None:
        params = params.replace(kernel=kernel)
    params = params.replace(kernel=resolve_kernel_mode(params.kernel))
    kernel_backend = "interp" if batched else kernel_backend_for_params(params)
    per_workload: dict[str, dict] = {}
    for wl in workloads:
        if batched:
            per_workload[wl] = bench_workload_batched(
                wl, params, repeats=repeats, width=batch_width
            )
        else:
            per_workload[wl] = bench_workload(wl, params, repeats=repeats)
    total_instrs = sum(w["instructions"] for w in per_workload.values())
    total_wall = sum(w["wall_seconds"] for w in per_workload.values())
    rates = [w["instructions_per_second"] for w in per_workload.values()]
    config = {
        "warmup_instructions": params.warmup_instructions,
        "sim_instructions": params.sim_instructions,
        "warmup_mode": params.warmup_mode,
        "kernel": params.kernel,
        "kernel_backend": kernel_backend,
        "label": params.label(),
        "repeats": repeats,
        "workloads": workloads,
        "mode": "batched" if batched else "scalar",
    }
    if batched:
        config["batch_width"] = max(1, batch_width)
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "platform": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
        },
        "config": config,
        "workloads": per_workload,
        "aggregate": {
            "total_instructions": total_instrs,
            "total_wall_seconds": total_wall,
            "instructions_per_second": total_instrs / total_wall if total_wall > 0 else 0.0,
            "geomean_instructions_per_second": geomean(rates) if all(r > 0 for r in rates) else 0.0,
        },
    }


def write_bench(payload: dict, output: str | Path = DEFAULT_OUTPUT) -> Path:
    """Write the benchmark payload as pretty-printed JSON."""
    path = Path(output)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def append_history(payload: dict, path: str | Path = HISTORY_FILE) -> Path:
    """Append one platform-stamped line for ``payload`` to the history
    trail (``BENCH_history.jsonl``).

    Each line is a compact, self-contained record -- UTC timestamp,
    schema, platform, bench mode/config label, aggregate rates and
    per-workload rates -- so the perf trajectory is tracked in-repo
    instead of only in PR descriptions.  Lines only append; the file is
    human-diffable and trivially parsed with one ``json.loads`` per
    line.
    """
    path = Path(path)
    record = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "schema": payload.get("schema"),
        "platform": payload.get("platform", {}),
        "mode": payload.get("config", {}).get("mode", "scalar"),
        "kernel_backend": payload.get("config", {}).get("kernel_backend", "interp"),
        "config": {
            k: payload.get("config", {}).get(k)
            for k in (
                "label",
                "warmup_instructions",
                "sim_instructions",
                "warmup_mode",
                "kernel",
                "kernel_backend",
                "repeats",
                "batch_width",
            )
            if k in payload.get("config", {})
        },
        "aggregate": payload.get("aggregate", {}),
        "workloads": {
            name: row.get("instructions_per_second")
            for name, row in payload.get("workloads", {}).items()
        },
    }
    with path.open("a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return path


# ----------------------------------------------------------------------
# Trend reporting over BENCH_history.jsonl
# ----------------------------------------------------------------------
def load_history(path: str | Path = HISTORY_FILE) -> list[dict]:
    """Parse ``BENCH_history.jsonl``; malformed lines are skipped.

    Returns records in file (chronological) order.
    """
    path = Path(path)
    if not path.is_file():
        return []
    records: list[dict] = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict) and "aggregate" in record:
            records.append(record)
    return records


def machine_key(record: dict) -> str:
    """Grouping key for trend rows: machine + python + mode + backend.

    Rates are only comparable within one machine, bench mode *and*
    cycle-kernel backend; the history file may interleave entries from
    several (laptops, CI runners, typed vs forced-interp runs), so the
    trend table groups by this key.  Records predating the backend
    field were all interpreted runs.
    """
    plat = record.get("platform", {})
    return (
        f"{plat.get('machine', '?')}/{plat.get('implementation', '?')}"
        f"-{plat.get('python', '?')}/{record.get('mode', 'scalar')}"
        f"/{record.get('kernel_backend', 'interp')}"
    )


def _record_headline(record: dict) -> float | None:
    agg = record.get("aggregate", {})
    return (
        agg.get("geomean_instructions_per_second")
        or agg.get("instructions_per_second")
        or None
    )


def trend_report(records: list[dict], last: int = 10) -> dict:
    """Per-machine regression trend over the history trail.

    For each machine/mode group: the last ``last`` entries with their
    headline (geomean) rate and the relative delta versus the previous
    entry, plus per-workload deltas of the newest entry versus the
    oldest entry in the window (the "what drifted over this window"
    view ``repro bench --trend`` prints).
    """
    groups: dict[str, list[dict]] = {}
    for record in records:
        groups.setdefault(machine_key(record), []).append(record)
    out: dict[str, dict] = {}
    for key, entries in groups.items():
        window = entries[-max(1, last):]
        rows = []
        prev_rate = None
        for record in window:
            rate = _record_headline(record)
            delta = (
                (rate - prev_rate) / prev_rate
                if rate is not None and prev_rate
                else None
            )
            rows.append(
                {
                    "timestamp": record.get("timestamp"),
                    "geomean_instructions_per_second": rate,
                    "delta_vs_prev": delta,
                }
            )
            if rate is not None:
                prev_rate = rate
        first, latest = window[0], window[-1]
        per_workload: dict[str, float | None] = {}
        first_rates = first.get("workloads", {}) or {}
        latest_rates = latest.get("workloads", {}) or {}
        for name in sorted(set(first_rates) | set(latest_rates)):
            a, b = first_rates.get(name), latest_rates.get(name)
            per_workload[name] = (b - a) / a if a and b else None
        first_rate = _record_headline(first)
        latest_rate = _record_headline(latest)
        out[key] = {
            "entries": len(entries),
            "window": len(window),
            "rows": rows,
            "workload_delta_window": per_workload,
            "geomean_delta_window": (
                (latest_rate - first_rate) / first_rate
                if first_rate and latest_rate
                else None
            ),
        }
    return out


REGRESSION_THRESHOLD = 0.20
"""Per-workload slowdown beyond this fraction fails ``bench --baseline``."""


def payload_kernel_backend(payload: dict) -> str:
    """The cycle-kernel backend a BENCH payload's rates came from.

    Payloads predating the field (schema <= 2 without ``kernel_backend``)
    were all produced by the interpreted kernel.
    """
    return payload.get("config", {}).get("kernel_backend", "interp")


def _headline_rate(payload: dict) -> float:
    """The payload's headline aggregate rate (geomean, schema 2).

    Falls back to the total-over-total rate for schema-1 baselines that
    predate the geomean field.
    """
    agg = payload.get("aggregate", {})
    return (
        agg.get("geomean_instructions_per_second")
        or agg.get("instructions_per_second")
        or 0.0
    )


def compare_bench(
    current: dict,
    baseline: dict,
    threshold: float = REGRESSION_THRESHOLD,
) -> dict:
    """Compare two BENCH_core payloads (``repro bench --baseline``).

    Returns per-workload and aggregate relative deltas
    (``+0.10`` = 10% faster than baseline).  The regression gate is
    **per-workload**: ``regressed_workloads`` names every workload whose
    rate dropped by more than ``threshold``, and ``regressed`` is set
    when any did -- an aggregate-only gate would let a 25% regression on
    one workload hide behind gains elsewhere.  The aggregate delta
    compares headline (geomean) rates.  Workloads present in only one
    payload are listed but not compared.  Comparisons are only
    meaningful between runs on the same machine with the same windows
    and mode; the caller is trusted on that.

    Cross-backend comparisons are flagged, never silent: when the two
    payloads' cycle-kernel backends differ (``typed-compiled`` /
    ``typed-python`` / ``interp``; see :func:`payload_kernel_backend`)
    the deltas measure the backend change, not a code regression, so
    ``backend_mismatch`` is set and the regression gate stands down
    (``regressed`` stays False) -- the caller reports the mismatch
    loudly instead of failing or passing on a meaningless ratio.
    """

    def _rate(payload: dict, workload: str) -> float | None:
        row = payload.get("workloads", {}).get(workload)
        return row.get("instructions_per_second") if row else None

    deltas: dict[str, float | None] = {}
    names = sorted(
        set(current.get("workloads", {})) | set(baseline.get("workloads", {}))
    )
    for name in names:
        cur, base = _rate(current, name), _rate(baseline, name)
        deltas[name] = (cur - base) / base if cur and base else None

    cur_backend = payload_kernel_backend(current)
    base_backend = payload_kernel_backend(baseline)
    backend_mismatch = cur_backend != base_backend
    regressed_workloads = sorted(
        name for name, d in deltas.items() if d is not None and d < -threshold
    )
    cur_agg = _headline_rate(current)
    base_agg = _headline_rate(baseline)
    agg_delta = (cur_agg - base_agg) / base_agg if cur_agg and base_agg else None
    return {
        "workloads": deltas,
        "aggregate": agg_delta,
        "threshold": threshold,
        "kernel_backend": {"current": cur_backend, "baseline": base_backend},
        "backend_mismatch": backend_mismatch,
        "regressed_workloads": regressed_workloads,
        "regressed": bool(regressed_workloads) and not backend_mismatch,
    }
