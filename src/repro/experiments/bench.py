"""Simulator throughput benchmark (``repro bench``).

Measures *simulated instructions per second of wall clock* -- the
number that bounds every sweep -- on the quick workload set, and writes
``BENCH_core.json`` so the performance trajectory of the pure-Python
cycle loop is tracked PR over PR.

Methodology:

* Trace generation happens outside the timed region (sweeps amortise
  it across dozens of configurations; the cycle loop is what we track).
* Each workload runs ``repeats`` times single-process with caching
  bypassed (a benchmark that reads the result cache would measure
  pickle, not simulation); the best repeat is reported to suppress
  scheduler noise.
* The headline number is total simulated instructions over total
  best-repeat wall time, plus a geomean of per-workload rates.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from repro.common.params import SimParams
from repro.common.stats import geomean
from repro.core.simulator import Simulator
from repro.experiments.configs import QUICK_WORKLOADS, default_params
from repro.trace.workloads import make_trace

BENCH_SCHEMA_VERSION = 1
DEFAULT_OUTPUT = "BENCH_core.json"


def bench_workload(
    workload: str,
    params: SimParams,
    repeats: int = 1,
) -> dict:
    """Time one workload; returns its per-run metrics (best of repeats)."""
    n = params.warmup_instructions + params.sim_instructions
    program, stream = make_trace(workload, n)  # untimed: setup, not simulation
    best_wall = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        sim = Simulator(params, program, stream)
        t0 = time.perf_counter()
        run = sim.run(workload_name=workload)
        wall = time.perf_counter() - t0
        if wall < best_wall:
            best_wall = wall
            result = run
    return {
        "instructions": n,
        "measured_instructions": result.instructions,
        "cycles": result.cycles,
        "ipc": result.ipc,
        "wall_seconds": best_wall,
        "instructions_per_second": n / best_wall if best_wall > 0 else 0.0,
    }


def run_bench(
    workloads: list[str] | None = None,
    params: SimParams | None = None,
    repeats: int = 1,
    fast_warmup: bool = False,
) -> dict:
    """Benchmark the cycle loop; returns the BENCH_core payload.

    ``fast_warmup`` switches the runs to functional fast-forward warmup
    (``repro bench --fast-warmup``); the reported rate still counts the
    warmup instructions -- they are simulated, just architecturally --
    so the speedup from skipping cycle-accurate warmup shows up in
    ``instructions_per_second`` directly.
    """
    workloads = workloads or list(QUICK_WORKLOADS)
    params = params or default_params()
    if fast_warmup:
        params = params.replace(warmup_mode="functional")
    per_workload: dict[str, dict] = {}
    for wl in workloads:
        per_workload[wl] = bench_workload(wl, params, repeats=repeats)
    total_instrs = sum(w["instructions"] for w in per_workload.values())
    total_wall = sum(w["wall_seconds"] for w in per_workload.values())
    rates = [w["instructions_per_second"] for w in per_workload.values()]
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "platform": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
        },
        "config": {
            "warmup_instructions": params.warmup_instructions,
            "sim_instructions": params.sim_instructions,
            "warmup_mode": params.warmup_mode,
            "label": params.label(),
            "repeats": repeats,
            "workloads": workloads,
        },
        "workloads": per_workload,
        "aggregate": {
            "total_instructions": total_instrs,
            "total_wall_seconds": total_wall,
            "instructions_per_second": total_instrs / total_wall if total_wall > 0 else 0.0,
            "geomean_instructions_per_second": geomean(rates) if all(r > 0 for r in rates) else 0.0,
        },
    }


def write_bench(payload: dict, output: str | Path = DEFAULT_OUTPUT) -> Path:
    """Write the benchmark payload as pretty-printed JSON."""
    path = Path(output)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


REGRESSION_THRESHOLD = 0.20
"""Aggregate slowdown beyond this fraction fails ``bench --baseline``."""


def compare_bench(
    current: dict,
    baseline: dict,
    threshold: float = REGRESSION_THRESHOLD,
) -> dict:
    """Compare two BENCH_core payloads (``repro bench --baseline``).

    Returns per-workload and aggregate relative deltas
    (``+0.10`` = 10% faster than baseline) plus a ``regressed`` flag
    set when the aggregate rate dropped by more than ``threshold``.
    Workloads present in only one payload are listed but not compared.
    Comparisons are only meaningful between runs on the same machine
    with the same windows; the caller is trusted on that.
    """

    def _rate(payload: dict, workload: str) -> float | None:
        row = payload.get("workloads", {}).get(workload)
        return row.get("instructions_per_second") if row else None

    deltas: dict[str, float | None] = {}
    names = sorted(
        set(current.get("workloads", {})) | set(baseline.get("workloads", {}))
    )
    for name in names:
        cur, base = _rate(current, name), _rate(baseline, name)
        deltas[name] = (cur - base) / base if cur and base else None

    cur_agg = current.get("aggregate", {}).get("instructions_per_second", 0.0)
    base_agg = baseline.get("aggregate", {}).get("instructions_per_second", 0.0)
    agg_delta = (cur_agg - base_agg) / base_agg if cur_agg and base_agg else None
    return {
        "workloads": deltas,
        "aggregate": agg_delta,
        "threshold": threshold,
        "regressed": agg_delta is not None and agg_delta < -threshold,
    }

