#!/usr/bin/env python3
"""Regenerate paper tables/figures outside pytest.

Usage::

    python scripts/run_experiments.py            # everything
    python scripts/run_experiments.py fig7 fig8  # a subset

Each experiment's rendered table is printed and archived under
``results/<name>.txt``.  Results are memoised in-process and in the
persistent result cache (``results/.cache/``), so warm re-runs simulate
nothing; uncached points fan out across ``REPRO_JOBS`` worker
processes.  A cache/simulation summary is printed at the end.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.common.log import configure as configure_logging
from repro.experiments.analysis import ALL_ABLATIONS
from repro.experiments.cache import cache_stats
from repro.experiments.figures import ALL_EXPERIMENTS as _FIGURES
from repro.experiments.report import render_table

ALL_EXPERIMENTS = {**_FIGURES, **ALL_ABLATIONS}

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def main(argv: list[str]) -> int:
    configure_logging()  # level from REPRO_LOG (default warning)
    names = argv or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; known: {sorted(ALL_EXPERIMENTS)}")
        return 2
    RESULTS_DIR.mkdir(exist_ok=True)
    for name in names:
        t0 = time.time()
        data = ALL_EXPERIMENTS[name]()
        text = render_table(data["title"], data["headers"], data["rows"])
        if "paper" in data:
            text += "\npaper reference: " + ", ".join(
                f"{k}={v}" for k, v in data["paper"].items()
            )
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(text)
        print(f"[{name} done in {time.time() - t0:.1f}s]\n", flush=True)
    stats = cache_stats()
    print(
        f"[cache: {stats.get('sim_runs')} simulated, "
        f"{stats.get('cache_memo_hit')} memo hits, "
        f"{stats.get('cache_disk_hit')} disk hits, "
        f"{stats.get('cache_stale')} stale]"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
