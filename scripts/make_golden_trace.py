#!/usr/bin/env python
"""Regenerate the committed golden ChampSim fixture.

The fixture (``tests/data/golden.champsim.xz``) is a small real
ChampSim-format trace built by encoding a deterministic synthetic
oracle stream through :func:`repro.trace.champsim.write_champsim_trace`.
It backs ``tests/test_champsim.py`` and the CI ingestion smoke; keep it
under 100KB.

Usage::

    PYTHONPATH=src python scripts/make_golden_trace.py [OUT]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.trace.cfg import generate_program
from repro.trace.champsim import write_champsim_trace
from repro.trace.oracle import run_oracle
from repro.trace.workloads import default_workloads

#: The stream encoded into the fixture: enough for a 20K-instruction
#: window plus TRACE_SLACK run-ahead margin on both decode paths.
GOLDEN_WORKLOAD = "spc_fp"
GOLDEN_INSTRUCTIONS = 30_000

DEFAULT_OUT = Path(__file__).resolve().parents[1] / "tests" / "data" / "golden.champsim.xz"


def main(argv: list[str]) -> int:
    out = Path(argv[1]) if len(argv) > 1 else DEFAULT_OUT
    wl = next(w for w in default_workloads() if w.name == GOLDEN_WORKLOAD)
    program = generate_program(wl.program_spec, wl.program_seed)
    stream = run_oracle(program, GOLDEN_INSTRUCTIONS, wl.oracle_seed)
    out.parent.mkdir(parents=True, exist_ok=True)
    write_champsim_trace(out, stream)
    size = out.stat().st_size
    print(f"wrote {out} ({size:,} bytes, {stream.total_instructions} instructions)")
    if size >= 100_000:
        print("ERROR: fixture exceeds the 100KB budget", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
