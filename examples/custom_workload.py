#!/usr/bin/env python3
"""Scenario: evaluating the frontend on your own workload shape.

Builds a custom synthetic program -- an interpreter-style workload with
a huge indirect-dispatch loop -- runs the FDP frontend on it, and shows
how to persist the trace for colleagues to reproduce.

Usage::

    python examples/custom_workload.py
"""

import tempfile
from pathlib import Path

from repro import SimParams
from repro.core.simulator import Simulator
from repro.trace.cfg import ProgramSpec, generate_program
from repro.trace.oracle import run_oracle
from repro.trace.reader import load_trace, save_trace


def interpreter_spec() -> ProgramSpec:
    """An interpreter: one hot dispatch loop, many small handlers,
    branchy and indirect-heavy (the classic FDP stress case)."""
    return ProgramSpec(
        n_functions=220,
        blocks_per_function=(3, 8),
        instrs_per_block=(3, 8),
        cond_fraction=0.38,
        jump_fraction=0.05,
        call_fraction=0.14,
        indirect_jump_fraction=0.05,   # dispatch-style indirect jumps
        indirect_call_fraction=0.06,   # handler dispatch
        early_return_fraction=0.04,
        indirect_fanout=(4, 8),
        indirect_random_fraction=0.6,  # data-dependent opcode stream
        loops_per_function=(0, 1),
        loop_trip=(2, 12),
        frac_never_taken=0.30,
        frac_mostly_taken=0.35,
        frac_pattern=0.25,
        frac_random=0.10,
        n_phases=4,
        functions_per_phase=36,
        phase_repeats=2,
    )


def main() -> None:
    spec = interpreter_spec()
    program_seed, oracle_seed = 4242, 777
    window = 45_000

    program = generate_program(spec, program_seed)
    stream = run_oracle(program, window + 5_000, oracle_seed)
    print(
        f"generated interpreter workload: {program.footprint_bytes // 1024}KB code, "
        f"{program.static_branches} static branches, "
        f"{stream.total_taken * 1000 // stream.total_instructions} taken branches/KI"
    )

    params = SimParams(warmup_instructions=12_000, sim_instructions=30_000)
    for label, p in {
        "baseline": params.with_frontend(ftq_entries=2, pfc_enabled=False),
        "fdp": params,
        "fdp+perfect-btb": params.with_branch(perfect_btb=True),
    }.items():
        result = Simulator(p, program, stream).run("interpreter")
        print(f"{label:16s} IPC={result.ipc:5.2f} brMPKI={result.branch_mpki:5.1f} "
              f"i$MPKI={result.l1i_mpki:5.1f}")

    # Persist the trace: the file stores the spec + seeds, so loading
    # regenerates the identical program and committed stream.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "interpreter.trace.json"
        save_trace(path, spec, program_seed, oracle_seed, window + 5_000)
        loaded_program, loaded_stream = load_trace(path)
        assert loaded_stream.total_instructions == stream.total_instructions
        print(f"\ntrace round-tripped through {path.name} "
              f"({path.stat().st_size} bytes on disk)")


if __name__ == "__main__":
    main()
