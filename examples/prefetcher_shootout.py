#!/usr/bin/env python3
"""Scenario: should we ship a dedicated instruction prefetcher?

Compares the IPC-1 prefetcher zoo against FDP on one workload from
each category, including the I-cache tag-probe traffic that Fig 9 uses
to argue dedicated prefetchers cost energy.

Usage::

    python examples/prefetcher_shootout.py
"""

from repro import SimParams, simulate

WORKLOADS = ["srv_web", "clt_browser", "spc_int_a"]
PREFETCHERS = ["none", "nl1", "eip27", "fnl_mma", "djolt", "perfect"]


def main() -> None:
    base = SimParams(warmup_instructions=15_000, sim_instructions=40_000)
    nofdp = base.with_frontend(ftq_entries=2, pfc_enabled=False)

    header = f"{'config':22s}" + "".join(f"{wl:>14s}" for wl in WORKLOADS) + f"{'tag/KI':>10s}"
    print(header)
    print("-" * len(header))

    baselines = {wl: simulate(wl, nofdp) for wl in WORKLOADS}

    def row(label, params):
        cells = []
        tags = 0.0
        for wl in WORKLOADS:
            r = simulate(wl, params)
            cells.append(f"{100 * (r.ipc / baselines[wl].ipc - 1):+13.1f}%")
            tags += r.tag_accesses_per_kilo / len(WORKLOADS)
        print(f"{label:22s}" + "".join(cells) + f"{tags:10.0f}")

    for pf in PREFETCHERS:
        params = nofdp if pf == "none" else nofdp.replace(prefetcher=pf)
        row(f"noFDP+{pf}", params)
    row("FDP (24-entry FTQ)", base)
    row("FDP+eip27", base.replace(prefetcher="eip27"))

    print(
        "\nReading: FDP alone beats every dedicated prefetcher, and adding "
        "one on top of FDP buys little while multiplying tag-array traffic "
        "(paper Sections VI-A and VI-D)."
    )


if __name__ == "__main__":
    main()
