#!/usr/bin/env python3
"""Scenario: sizing a frontend for a server workload.

A design team wants to know where to spend area: deeper FTQ, bigger
BTB, or PFC logic?  This script sweeps all three on a server-class
trace and prints the marginal gain of each step, mirroring the paper's
Figs 7, 11 and 14.

Usage::

    python examples/frontend_sizing.py [workload]
"""

import sys

from repro import SimParams, simulate
from repro.core.metrics import ftq_storage_bytes


def pct(new: float, old: float) -> str:
    return f"{100.0 * (new / old - 1.0):+6.1f}%"


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "srv_db"
    base = SimParams(warmup_instructions=15_000, sim_instructions=40_000)

    print(f"workload: {workload}\n")

    print("-- FTQ depth (run-ahead capability, Fig 14) --")
    prev = None
    for entries in (2, 4, 8, 12, 24, 32):
        r = simulate(workload, base.with_frontend(ftq_entries=entries, pfc_enabled=entries > 2))
        marginal = "" if prev is None else f"  marginal {pct(r.ipc, prev)}"
        print(
            f"  {entries:3d} entries ({ftq_storage_bytes(entries):4d} bytes): "
            f"IPC {r.ipc:5.2f}{marginal}"
        )
        prev = r.ipc

    print("\n-- BTB capacity with PFC on/off (Figs 7/11) --")
    for btb in (512, 2048, 8192):
        on = simulate(workload, base.with_branch(btb_entries=btb))
        off = simulate(workload, base.with_branch(btb_entries=btb).with_frontend(pfc_enabled=False))
        print(
            f"  {btb:6d}-entry BTB: IPC {off.ipc:5.2f} -> {on.ipc:5.2f} with PFC "
            f"({pct(on.ipc, off.ipc)}), branch MPKI {off.branch_mpki:5.1f} -> {on.branch_mpki:5.1f}"
        )

    print(
        "\nReading: PFC substitutes for BTB capacity -- its gain shrinks as "
        "the BTB grows (paper Section VI-B)."
    )


if __name__ == "__main__":
    main()
