#!/usr/bin/env python3
"""Quickstart: measure what FDP buys over a no-prefetch frontend.

Runs three configurations of the simulated core on one server-class
workload and prints the headline comparison the paper is built around
(Section VI-A):

* baseline  -- 2-entry FTQ (no run-ahead), no prefetching
* FDP       -- 24-entry FTQ with PFC (the paper's design)
* perfect   -- perfect instruction prefetching (upper bound)

Usage::

    python examples/quickstart.py [workload]
"""

import sys

from repro import SimParams, simulate


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "srv_web"

    fdp = SimParams(warmup_instructions=15_000, sim_instructions=40_000)
    baseline = fdp.with_frontend(ftq_entries=2, pfc_enabled=False)
    perfect = baseline.replace(prefetcher="perfect")

    print(f"workload: {workload}\n")
    results = {}
    for name, params in [("baseline", baseline), ("fdp", fdp), ("perfect", perfect)]:
        results[name] = simulate(workload, params)
        print(results[name].summary())

    base_ipc = results["baseline"].ipc
    print()
    for name in ("fdp", "perfect"):
        speedup = results[name].ipc / base_ipc - 1.0
        print(f"{name:8s} speedup over baseline: {100 * speedup:+.1f}%")
    print(
        "\nFDP achieves most of the perfect-prefetch headroom using only "
        "the FTQ's 195 bytes of state (paper Table III)."
    )


if __name__ == "__main__":
    main()
