#!/usr/bin/env python3
"""Scenario: choosing a branch-history management policy.

Replays the paper's Section VI-C argument on one workload: taken-only
target history (THR) against the direction-history variants academia
uses (Table V), with and without PFC, rendered as an ASCII chart.

Usage::

    python examples/history_policies.py [workload]
"""

import sys

from repro import HistoryPolicy, SimParams, simulate
from repro.experiments.viz import bar_chart


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "srv_cache"
    base = SimParams(warmup_instructions=15_000, sim_instructions=40_000)

    results = {}
    for policy in HistoryPolicy:
        for pfc in (True, False):
            label = f"{policy.value}{'+PFC' if pfc else ''}"
            params = base.with_frontend(history_policy=policy, pfc_enabled=pfc)
            results[label] = simulate(workload, params)

    anchor = results["THR+PFC"].ipc
    items = [
        (label, 100.0 * (r.ipc / anchor - 1.0))
        for label, r in sorted(results.items(), key=lambda kv: -kv[1].ipc)
    ]
    print(bar_chart(f"history policies on {workload} (vs THR+PFC)", items))

    print("\nbranch MPKI:")
    for label, r in sorted(results.items(), key=lambda kv: kv[1].branch_mpki):
        print(f"  {label:12s} {r.branch_mpki:6.2f}")

    print(
        "\nReading: THR needs no fixup machinery yet tracks the idealized "
        "history; the fixup policies (GHR2/GHR3) pay for their precision "
        "with frontend flushes (paper Fig 8, Table II)."
    )


if __name__ == "__main__":
    main()
